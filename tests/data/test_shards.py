"""Core tests for the sharded data plane (repro.data.shards).

The store fixture lives in tests/conftest.py (``shard_store``); these
tests treat it as read-only.  Fault injection (mutating shard bytes)
lives in test_shards_faults.py, randomized invariants in
test_shards_properties.py, and the training-equivalence story in
tests/train/test_sharded_equivalence.py.
"""

import json

import numpy as np
import pytest

from repro.data import (FEATURE_NAMES, NUM_TIME_STEPS, ShardedDataset,
                        ShardIntegrityError, Standardizer, plan_shards)
from repro.data.shards import MANIFEST_NAME

pytestmark = pytest.mark.shards


def test_plan_shards_covers_cohort():
    plan = plan_shards(100, 32)
    assert [count for _, count in plan] == [32, 32, 32, 4]
    assert [shard_id for shard_id, _ in plan] == [0, 1, 2, 3]
    with pytest.raises(ValueError):
        plan_shards(0, 32)
    with pytest.raises(ValueError):
        plan_shards(10, 0)


def test_open_validates_and_reads_manifest(shard_store):
    store = ShardedDataset.open(shard_store, verify=True)
    assert len(store) == 96
    assert store.num_shards == 6
    assert store.num_features == len(FEATURE_NAMES)
    assert store.num_time_steps == NUM_TIME_STEPS
    assert store.manifest["cohort"] == "PhysioNet2012"
    assert [e["shard_id"] for e in store.entries] == list(range(6))


def test_open_rejects_missing_and_malformed(tmp_path, shard_store):
    with pytest.raises(FileNotFoundError):
        ShardedDataset.open(tmp_path / "nowhere")
    bad = tmp_path / "bad"
    bad.mkdir()
    manifest = json.loads((shard_store / MANIFEST_NAME).read_text())
    manifest["format"] = 99
    (bad / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ShardIntegrityError, match="format"):
        ShardedDataset.open(bad)


def test_statistics_match_materialized(shard_store):
    store = ShardedDataset.open(shard_store)
    assert store.statistics() == store.materialize().statistics()


def test_lengths_and_histogram_match_materialized(shard_store):
    store = ShardedDataset.open(shard_store)
    dataset = store.materialize()
    np.testing.assert_array_equal(store.lengths(), dataset.lengths())
    np.testing.assert_array_equal(
        store.length_histogram(),
        np.bincount(dataset.lengths(), minlength=NUM_TIME_STEPS + 1))


def test_labels_match_materialized(shard_store):
    store = ShardedDataset.open(shard_store)
    dataset = store.materialize()
    for task in ("mortality", "los", "phenotype"):
        np.testing.assert_array_equal(store.labels(task),
                                      dataset.labels(task))
    with pytest.raises(ValueError, match="unknown task"):
        store.labels("readmission")


def test_standardizer_matches_in_memory_fit(shard_store):
    """The moments-based standardizer matches Standardizer.fit over the
    concatenated (already-cleaned) raw values — shard-sized partial
    sums lose nothing.  The mean is exact; the std tolerance covers the
    one-pass E[x^2]-E[x]^2 formula's cancellation against the two-pass
    nanstd (~1e-12 relative for large-mean vitals)."""
    store = ShardedDataset.open(shard_store)
    raw = np.concatenate([
        np.load(shard_store / entry["path"] / "raw.npy")
        for entry in store.entries])
    reference = Standardizer().fit(raw.astype(np.float64))
    np.testing.assert_allclose(store.standardizer.mean, reference.mean,
                               rtol=0, atol=1e-12)
    np.testing.assert_allclose(store.standardizer.std, reference.std,
                               rtol=1e-9, atol=0)


def test_subset_matches_materialized_subset(shard_store):
    store = ShardedDataset.open(shard_store)
    dataset = store.materialize()
    indices = np.array([5, 90, 17, 17, 0, 63])   # cross-shard, repeated
    streamed = store.subset(indices)
    reference = dataset.subset(indices)
    np.testing.assert_array_equal(streamed.values, reference.values)
    np.testing.assert_array_equal(streamed.mask, reference.mask)
    np.testing.assert_array_equal(streamed.deltas, reference.deltas)
    np.testing.assert_array_equal(streamed.mortality, reference.mortality)
    with pytest.raises(IndexError):
        store.subset([len(store)])


def test_split_views_are_leak_free(shard_store):
    store = ShardedDataset.open(shard_store)
    train, validation = store.split(val_shards=2)
    assert len(train) + len(validation) == len(store)
    assert [e["shard_id"] for e in train.entries] == [0, 1, 2, 3]
    assert [e["shard_id"] for e in validation.entries] == [4, 5]
    # The train view's standardizer must come from train shards only.
    raw = np.concatenate([
        np.load(shard_store / entry["path"] / "raw.npy")
        for entry in train.entries])
    reference = Standardizer().fit(raw.astype(np.float64))
    np.testing.assert_allclose(train.standardizer.mean, reference.mean,
                               rtol=0, atol=1e-12)
    np.testing.assert_allclose(train.standardizer.std, reference.std,
                               rtol=1e-9, atol=0)
    with pytest.raises(ValueError, match="val_shards"):
        store.split(val_shards=6)
    with pytest.raises(KeyError):
        store.select_shards([42])


def test_metadata_path_never_reads_raw_arrays(shard_store, tmp_path):
    """Regression for the eager-loading fix: opening a manifest and
    using the metadata surface must not materialize the value arrays.

    Proven by corruption, not mocking: every ``raw.npy`` is overwritten
    with same-size garbage, so any code path that actually read raw
    values would fail its checksum — yet open/len/lengths/labels/
    statistics all still work, and only data access raises."""
    import shutil

    root = tmp_path / "store"
    shutil.copytree(shard_store, root)
    for entry in ShardedDataset.open(root).entries:
        path = root / entry["path"] / "raw.npy"
        path.write_bytes(b"\x00" * path.stat().st_size)

    store = ShardedDataset.open(root)        # structural checks only
    assert len(store) == 96
    assert store.lengths().shape == (96,)
    assert store.labels("mortality").shape == (96,)
    assert store.statistics()["admissions"] == 96
    assert store.length_histogram().sum() == 96
    with pytest.raises(ShardIntegrityError, match="checksum"):
        store.subset([0])
