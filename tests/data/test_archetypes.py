"""Tests of the disease archetype library."""

import numpy as np
import pytest

from repro.data import ARCHETYPES, NUM_FEATURES, archetype_by_name, feature_index


class TestLibrary:
    def test_names_unique(self):
        names = [a.name for a in ARCHETYPES]
        assert len(set(names)) == len(names)

    def test_paper_dm_archetypes_present(self):
        for name in ("dm_only", "dm_dka", "dm_dla"):
            assert archetype_by_name(name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            archetype_by_name("space_flu")

    def test_prevalences_positive(self):
        assert all(a.prevalence > 0 for a in ARCHETYPES)

    def test_deviation_features_exist(self):
        for archetype in ARCHETYPES:
            for name in archetype.deviations:
                feature_index(name)  # raises on a bad name


class TestClinicalStructure:
    """The archetypes must encode the paper's Section I narrative."""

    def test_dm_only_is_isolated_hyperglycemia(self):
        dm = archetype_by_name("dm_only")
        assert dm.deviations["Glucose"] > 0
        assert len(dm.deviations) == 1

    def test_dka_signature(self):
        dka = archetype_by_name("dm_dka").deviations
        assert dka["Glucose"] > 0 and dka["pH"] < 0 and dka["HCO3"] < 0

    def test_dla_signature(self):
        dla = archetype_by_name("dm_dla").deviations
        assert dla["Glucose"] > 0
        assert dla["Lactate"] > 0
        assert dla["pH"] < 0
        assert dla["Temp"] < 0 and dla["MAP"] < 0  # the paper's DLA symptoms

    def test_same_glucose_different_context(self):
        """The same abnormal Glucose must co-occur with different partners
        across DM variants — the core interaction-learning premise."""
        dka = set(archetype_by_name("dm_dka").deviations)
        dla = set(archetype_by_name("dm_dla").deviations)
        assert "Glucose" in dka & dla
        assert dka != dla

    def test_sepsis_shares_lactate_without_glucose(self):
        """Lactate alone must not identify DLA (sepsis also raises it)."""
        sepsis = archetype_by_name("sepsis").deviations
        assert sepsis["Lactate"] > 0
        assert "Glucose" not in sepsis

    def test_complications_riskier_than_dm_only(self):
        dm = archetype_by_name("dm_only")
        for name in ("dm_dka", "dm_dla"):
            assert (archetype_by_name(name).base_mortality_logit
                    > dm.base_mortality_logit)

    def test_stable_is_lowest_risk(self):
        stable = archetype_by_name("stable")
        assert all(stable.base_mortality_logit <= a.base_mortality_logit
                   for a in ARCHETYPES)


class TestDeviationVector:
    def test_dense_vector_shape(self):
        vec = archetype_by_name("dm_dla").deviation_vector(NUM_FEATURES)
        assert vec.shape == (NUM_FEATURES,)

    def test_vector_matches_mapping(self):
        archetype = archetype_by_name("sepsis")
        vec = archetype.deviation_vector(NUM_FEATURES)
        for name, shift in archetype.deviations.items():
            assert vec[feature_index(name)] == shift
        assert np.count_nonzero(vec) == len(archetype.deviations)
