"""Property tests for the sharded store's determinism contract.

Three invariants make the store trustworthy at scale:

(a) *byte determinism* — a shard is a pure function of
    ``(cohort, seed, shard_id)``: deleting and regenerating any shard
    reproduces identical bytes, and worker count / submission order
    never leak into the output;
(b) *partition* — an epoch plan covers every admission exactly once,
    bucketed or not, for any batch size;
(c) *seed determinism* — the same rng seed yields the same epoch plan.

Seeded versions of each property run unconditionally; randomized
versions run under Hypothesis when available (skipped otherwise —
mirroring tests/train/test_bucketing_properties.py).
"""

import json
import os
import shutil

import numpy as np
import pytest

from repro.data import (ShardedDataset, generate_shards, plan_shards,
                        regenerate_shard)
from repro.data.shards import _SHARD_FILES, MANIFEST_NAME

pytestmark = pytest.mark.shards


def _store_fingerprint(root):
    """Manifest text plus every shard file's bytes."""
    fingerprint = {"manifest": (root / MANIFEST_NAME).read_bytes()}
    for entry in ShardedDataset.open(root).entries:
        for name in _SHARD_FILES:
            fingerprint[f"{entry['path']}/{name}"] = \
                (root / entry["path"] / name).read_bytes()
    return fingerprint


def _assert_plan_partitions(store, batch_size, bucket, seed):
    rng = np.random.default_rng(seed) if seed is not None else None
    plan = store.epoch_plan(batch_size, rng=rng, bucket_by_length=bucket)
    seen = np.concatenate(plan)
    assert sorted(seen.tolist()) == list(range(len(store)))
    assert all(0 < len(batch) <= batch_size for batch in plan)


# ----------------------------------------------------------------------
# (a) byte determinism
# ----------------------------------------------------------------------

def test_regenerating_every_shard_reproduces_bytes(shard_store, tmp_path):
    root = tmp_path / "store"
    shutil.copytree(shard_store, root)
    before = _store_fingerprint(root)
    for entry in ShardedDataset.open(root).entries:
        shutil.rmtree(root / entry["path"])
        regenerate_shard(root, entry["shard_id"])
    assert _store_fingerprint(root) == before
    with pytest.raises(KeyError):
        regenerate_shard(root, 999)


def test_regenerate_detects_incompatible_generator(shard_store, tmp_path):
    root = tmp_path / "store"
    shutil.copytree(shard_store, root)
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    manifest["generator"]["label_noise"] = 0.5
    (root / MANIFEST_NAME).write_text(json.dumps(manifest))
    from repro.data import ShardIntegrityError
    with pytest.raises(ShardIntegrityError, match="reproduce"):
        regenerate_shard(root, 0)


def test_worker_count_and_order_do_not_change_bytes(tmp_path):
    """{1, 2, 4} workers and a shuffled shard submission order all
    produce byte-identical stores — generation is embarrassingly
    parallel with no cross-shard state."""
    reference = None
    for label, kwargs in (("w1", dict(num_workers=1)),
                          ("w2", dict(num_workers=2)),
                          ("w4", dict(num_workers=4)),
                          ("shuffled", dict(num_workers=2,
                                            submit_order=[3, 0, 4, 1, 2]))):
        root = tmp_path / label
        generate_shards(root, 36, shard_size=8, seed=13, **kwargs)
        fingerprint = _store_fingerprint(root)
        if reference is None:
            reference = fingerprint
        else:
            assert fingerprint == reference, label


def test_multiprocess_generation_smoke(tmp_path):
    """``num_workers=2`` with ``sync_workers`` provably runs in more
    than one process — every shard records its builder pid, at least
    two distinct child pids appear, and none is the parent — while the
    store stays byte-identical to single-process generation."""
    parallel = generate_shards(tmp_path / "w2", 36, shard_size=8, seed=13,
                               num_workers=2, sync_workers=True)
    pids = parallel.generation_pids
    assert set(pids) == {e["shard_id"] for e in parallel.entries}
    assert len(set(pids.values())) >= 2, (
        f"expected >1 worker process, saw pids {sorted(set(pids.values()))}")
    assert os.getpid() not in pids.values()

    serial = generate_shards(tmp_path / "w1", 36, shard_size=8, seed=13)
    assert set(serial.generation_pids.values()) == {os.getpid()}
    assert _store_fingerprint(tmp_path / "w2") \
        == _store_fingerprint(tmp_path / "w1")

    with pytest.raises(ValueError, match="at least one shard per worker"):
        generate_shards(tmp_path / "starved", 8, shard_size=8, seed=13,
                        num_workers=4, sync_workers=True)


def test_generate_refuses_to_overwrite(shard_store):
    with pytest.raises(FileExistsError):
        generate_shards(shard_store, 8, shard_size=8, seed=0)


# ----------------------------------------------------------------------
# (b) + (c) epoch plans partition the cohort, deterministically
# ----------------------------------------------------------------------

def test_epoch_plan_partitions_seeded(shard_store):
    store = ShardedDataset.open(shard_store)
    for bucket in (False, True):
        for batch_size in (1, 7, 16, 200):
            _assert_plan_partitions(store, batch_size, bucket, seed=3)
            _assert_plan_partitions(store, batch_size, bucket, seed=None)


def test_epoch_plan_deterministic_under_seed(shard_store):
    store = ShardedDataset.open(shard_store)
    for bucket in (False, True):
        first = store.epoch_plan(16, np.random.default_rng(9),
                                 bucket_by_length=bucket)
        second = store.epoch_plan(16, np.random.default_rng(9),
                                  bucket_by_length=bucket)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# Hypothesis lane (skipped when hypothesis is unavailable)
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
given, settings, strategies = (hypothesis.given, hypothesis.settings,
                               hypothesis.strategies)


@given(num_admissions=strategies.integers(1, 400),
       shard_size=strategies.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_hypothesis_plan_shards_partition(num_admissions, shard_size):
    plan = plan_shards(num_admissions, shard_size)
    assert [shard_id for shard_id, _ in plan] == list(range(len(plan)))
    assert sum(count for _, count in plan) == num_admissions
    assert all(0 < count <= shard_size for _, count in plan)
    # Only the last shard may be short.
    assert all(count == shard_size for _, count in plan[:-1])


@given(batch_size=strategies.integers(1, 40),
       seed=strategies.integers(0, 2**32 - 1),
       bucket=strategies.booleans())
@settings(max_examples=40, deadline=None)
def test_hypothesis_epoch_plan_partition(shard_store, batch_size, seed,
                                         bucket):
    store = ShardedDataset.open(shard_store)
    _assert_plan_partitions(store, batch_size, bucket, seed)
