"""Tests of dataset containers, splits, and batching."""

import numpy as np
import pytest

from repro.data import (NUM_FEATURES, NUM_TIME_STEPS, build_dataset,
                        iterate_batches, train_val_test_split)


class TestBuildDataset:
    def test_shapes(self, tiny_dataset):
        n = len(tiny_dataset)
        assert tiny_dataset.values.shape == (n, NUM_TIME_STEPS, NUM_FEATURES)
        assert tiny_dataset.mask.shape == tiny_dataset.values.shape
        assert tiny_dataset.deltas.shape == tiny_dataset.values.shape
        assert tiny_dataset.ever_observed.shape == (n, NUM_FEATURES)

    def test_values_fully_imputed(self, tiny_dataset):
        assert not np.isnan(tiny_dataset.values).any()

    def test_ever_observed_matches_mask(self, tiny_dataset):
        assert np.array_equal(tiny_dataset.ever_observed,
                              tiny_dataset.mask.any(axis=1))

    def test_labels_accessor(self, tiny_dataset):
        assert np.array_equal(tiny_dataset.labels("mortality"),
                              tiny_dataset.mortality)
        assert np.array_equal(tiny_dataset.labels("los"),
                              tiny_dataset.long_stay)

    def test_unknown_task_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.labels("readmission")

    def test_subset_preserves_alignment(self, tiny_dataset):
        idx = [3, 1, 7]
        sub = tiny_dataset.subset(idx)
        assert len(sub) == 3
        assert np.array_equal(sub.values, tiny_dataset.values[idx])
        assert np.array_equal(sub.mortality, tiny_dataset.mortality[idx])
        assert sub.archetypes == [tiny_dataset.archetypes[i] for i in idx]

    def test_statistics_keys(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        assert stats["admissions"] == len(tiny_dataset)
        assert stats["num_features"] == NUM_FEATURES
        assert 0.0 < stats["missing_rate"] < 1.0
        assert (stats["survivor"] + stats["non_survivor"]
                == stats["admissions"])


class TestSplits:
    def test_fractions(self, tiny_splits):
        total = (len(tiny_splits.train) + len(tiny_splits.validation)
                 + len(tiny_splits.test))
        assert total == 80
        assert len(tiny_splits.train) == 64

    def test_standardizer_fit_on_train_only(self, tiny_admissions):
        """Val/test must be standardized with train statistics (no leakage)."""
        splits = train_val_test_split(tiny_admissions,
                                      np.random.default_rng(5))
        rebuilt, _ = build_dataset(
            [tiny_admissions[i] for i in range(len(tiny_admissions))][:10],
            standardizer=splits.standardizer)
        # The same standardizer reproduces identical transforms.
        assert splits.standardizer.mean is not None

    def test_no_sample_overlap(self, tiny_admissions):
        rng = np.random.default_rng(9)
        splits = train_val_test_split(tiny_admissions, rng)
        # Mortality labels of a split concatenation must be a permutation
        # of the original labels.
        combined = np.concatenate([splits.train.mortality,
                                   splits.validation.mortality,
                                   splits.test.mortality])
        original = np.array([a.mortality for a in tiny_admissions])
        assert sorted(combined.tolist()) == sorted(original.tolist())

    def test_bad_fractions_raise(self, tiny_admissions):
        with pytest.raises(ValueError):
            train_val_test_split(tiny_admissions, np.random.default_rng(0),
                                 fractions=(0.5, 0.2, 0.2))


class TestBatching:
    def test_covers_every_sample_once(self, tiny_dataset):
        seen = 0
        for batch, labels in iterate_batches(tiny_dataset, "mortality", 16):
            assert len(batch) == len(labels)
            seen += len(batch)
        assert seen == len(tiny_dataset)

    def test_shuffled_when_rng_given(self, tiny_dataset):
        first_pass = [labels for _, labels in
                      iterate_batches(tiny_dataset, "mortality", 16,
                                      np.random.default_rng(0))]
        ordered = [labels for _, labels in
                   iterate_batches(tiny_dataset, "mortality", 16)]
        assert not all(np.array_equal(a, b)
                       for a, b in zip(first_pass, ordered))

    def test_labels_match_batch(self, tiny_dataset):
        for batch, labels in iterate_batches(tiny_dataset, "los", 8):
            assert np.array_equal(batch.long_stay, labels)
