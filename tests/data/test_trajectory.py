"""Tests of severity trajectories and their label-relevant summaries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import sample_trajectory
from repro.data.trajectory import (GLOBAL_LOADINGS, SeverityTrajectory,
                                   global_loading_vector)
from repro.data.schema import feature_index


class TestSampling:
    def test_length_and_nonnegativity(self):
        rng = np.random.default_rng(0)
        traj = sample_trajectory(rng, 48, late_event_prob=0.5)
        assert traj.severity.shape == (48,)
        assert np.all(traj.severity >= 0)

    def test_zero_event_probability(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            traj = sample_trajectory(rng, 48, late_event_prob=0.0)
            assert not traj.had_late_event
            assert traj.onset_hour is None

    def test_certain_event(self):
        rng = np.random.default_rng(2)
        traj = sample_trajectory(rng, 48, late_event_prob=1.0)
        assert traj.had_late_event
        assert 0 <= traj.onset_hour < 48

    def test_event_raises_severity_at_onset(self):
        rng = np.random.default_rng(3)
        jumps = []
        for _ in range(50):
            traj = sample_trajectory(rng, 48, late_event_prob=1.0)
            t = traj.onset_hour
            if t >= 1:
                jumps.append(traj.severity[t] - traj.severity[t - 1])
        assert np.mean(jumps) > 0.5

    def test_no_event_trends_downward(self):
        rng = np.random.default_rng(4)
        drops = []
        for _ in range(50):
            traj = sample_trajectory(rng, 48, late_event_prob=0.0)
            drops.append(traj.severity[:8].mean() - traj.severity[-8:].mean())
        assert np.mean(drops) > 0

    def test_initial_scale_scales_start(self):
        small = [sample_trajectory(np.random.default_rng(s), 48, 0.0,
                                   initial_scale=0.5).severity[0]
                 for s in range(40)]
        large = [sample_trajectory(np.random.default_rng(s), 48, 0.0,
                                   initial_scale=2.0).severity[0]
                 for s in range(40)]
        assert np.mean(large) > np.mean(small)


class TestRiskScore:
    def test_late_deterioration_scores_higher_than_early(self):
        """Same total severity, different timing: late must score higher."""
        early = np.r_[np.full(24, 2.0), np.full(24, 0.1)]
        late = early[::-1].copy()
        s_early = SeverityTrajectory(early, None, None, False).risk_score()
        s_late = SeverityTrajectory(late, None, None, False).risk_score()
        assert s_late > s_early

    def test_monotone_in_severity(self):
        base = np.linspace(0.5, 1.0, 48)
        low = SeverityTrajectory(base, None, None, False).risk_score()
        high = SeverityTrajectory(base * 2, None, None, False).risk_score()
        assert high > low

    def test_summaries(self):
        sev = np.linspace(0.0, 1.0, 48)
        traj = SeverityTrajectory(sev, None, None, False)
        assert np.isclose(traj.peak, 1.0)
        assert np.isclose(traj.late_mean, sev[-8:].mean())
        assert np.isclose(traj.overall_mean, sev.mean())


class TestGlobalLoadings:
    def test_gcs_falls_with_illness(self):
        assert GLOBAL_LOADINGS["GCS"] < 0

    def test_vector_layout(self):
        vec = global_loading_vector()
        for name, value in GLOBAL_LOADINGS.items():
            assert vec[feature_index(name)] == value


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.0, 1.0), st.integers(10, 96))
def test_trajectory_invariants(seed, event_prob, steps):
    """Property: any trajectory is nonnegative, finite, correct length."""
    traj = sample_trajectory(np.random.default_rng(seed), steps, event_prob)
    assert traj.severity.shape == (steps,)
    assert np.all(np.isfinite(traj.severity))
    assert np.all(traj.severity >= 0)
    if traj.onset_hour is not None:
        assert 0 <= traj.onset_hour < steps
    assert traj.risk_score() >= 0
