"""Tests of the observation (missingness) model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import NUM_FEATURES, ObservationModel
from repro.data.schema import FEATURES


def _relevant(names=()):
    from repro.data.schema import feature_index
    rel = np.zeros(NUM_FEATURES, dtype=bool)
    for name in names:
        rel[feature_index(name)] = True
    return rel


class TestMask:
    def test_shape_and_dtype(self):
        model = ObservationModel()
        mask = model.sample_mask(np.random.default_rng(0), np.ones(48),
                                 _relevant())
        assert mask.shape == (48, NUM_FEATURES)
        assert mask.dtype == bool

    def test_overall_missing_rate_near_paper(self):
        """~80% of cells missing, as in Table I."""
        model = ObservationModel()
        rng = np.random.default_rng(1)
        rates = []
        for _ in range(30):
            severity = np.abs(rng.normal(0.8, 0.3, 48))
            mask = model.sample_mask(rng, severity, _relevant(("Glucose",)))
            rates.append(1.0 - mask.mean())
        assert 0.70 < np.mean(rates) < 0.90

    def test_informative_sampling(self):
        """Higher severity hours are sampled more densely."""
        model = ObservationModel(severity_gain=0.8)
        rng = np.random.default_rng(2)
        low_counts, high_counts = [], []
        for _ in range(40):
            severity = np.r_[np.zeros(24), np.full(24, 2.0)]
            mask = model.sample_mask(rng, severity, _relevant())
            low_counts.append(mask[:24].sum())
            high_counts.append(mask[24:].sum())
        assert np.mean(high_counts) > 1.3 * np.mean(low_counts)

    def test_relevant_features_always_observed(self):
        model = ObservationModel(rate_scale=0.05)
        rng = np.random.default_rng(3)
        relevant = _relevant(("Lactate", "pH", "Glucose"))
        for _ in range(20):
            mask = model.sample_mask(rng, np.full(48, 0.1), relevant)
            assert mask[:, relevant].any(axis=0).all()

    def test_some_irrelevant_labs_never_ordered(self):
        model = ObservationModel()
        rng = np.random.default_rng(4)
        lab_cols = np.array([spec.kind == "lab" for spec in FEATURES])
        never_count = 0
        for _ in range(30):
            mask = model.sample_mask(rng, np.ones(48), _relevant())
            never_count += int((~mask.any(axis=0))[lab_cols].sum())
        assert never_count > 0

    def test_vitals_denser_than_labs(self):
        model = ObservationModel()
        rng = np.random.default_rng(5)
        vital_cols = np.array([spec.kind == "vital" for spec in FEATURES])
        lab_cols = np.array([spec.kind == "lab" for spec in FEATURES])
        mask = np.mean([model.sample_mask(rng, np.ones(48), _relevant())
                        for _ in range(20)], axis=0)
        assert mask[:, vital_cols].mean() > mask[:, lab_cols].mean()

    def test_rate_scale_monotone(self):
        rng1, rng2 = np.random.default_rng(6), np.random.default_rng(6)
        sparse = ObservationModel(rate_scale=0.5)
        dense = ObservationModel(rate_scale=1.5)
        sparse_mean = np.mean([
            sparse.sample_mask(rng1, np.ones(48), _relevant()).mean()
            for _ in range(20)])
        dense_mean = np.mean([
            dense.sample_mask(rng2, np.ones(48), _relevant()).mean()
            for _ in range(20)])
        assert dense_mean > sparse_mean


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1_000), st.floats(0.0, 3.0))
def test_mask_always_valid(seed, severity_level):
    """Property: the mask is well-formed for any severity level."""
    model = ObservationModel()
    rng = np.random.default_rng(seed)
    severity = np.full(48, severity_level)
    mask = model.sample_mask(rng, severity, _relevant(("Glucose",)))
    assert mask.shape == (48, NUM_FEATURES)
    assert mask.dtype == bool
    # Relevant feature must be observed at least once.
    from repro.data.schema import feature_index
    assert mask[:, feature_index("Glucose")].any()
