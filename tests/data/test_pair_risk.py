"""Tests of the pairwise-interaction risk term in the label process."""

import numpy as np

from repro.data import NUM_FEATURES, archetype_by_name
from repro.data.schema import feature_index
from repro.data.synthetic import SyntheticEMRGenerator


def _z_with(pairs):
    z = np.zeros((4, NUM_FEATURES))
    for name, value in pairs.items():
        z[:, feature_index(name)] = value
    return z


class TestPairRisk:
    def test_stable_archetype_has_no_pair_risk(self):
        stable = archetype_by_name("stable")
        assert SyntheticEMRGenerator._pair_risk(stable, _z_with({})) == 0.0

    def test_joint_abnormality_raises_risk(self):
        """DLA: Glucose x Lactate jointly high -> positive risk."""
        dla = archetype_by_name("dm_dla")
        joint = _z_with({"Glucose": 3.0, "Lactate": 3.0})
        assert SyntheticEMRGenerator._pair_risk(dla, joint) > 0.5

    def test_isolated_abnormality_carries_no_pair_risk(self):
        """The same Glucose without Lactate contributes ~nothing — the
        paper's 'same value, different meaning' premise."""
        dla = archetype_by_name("dm_dla")
        isolated = _z_with({"Glucose": 3.0})
        joint = _z_with({"Glucose": 3.0, "Lactate": 3.0})
        assert (SyntheticEMRGenerator._pair_risk(dla, joint)
                > SyntheticEMRGenerator._pair_risk(dla, isolated) + 0.5)

    def test_signed_pairs(self):
        """DKA: Glucose high with pH LOW is the risky combination."""
        dka = archetype_by_name("dm_dka")
        acidotic = _z_with({"Glucose": 3.0, "pH": -3.0})
        alkalotic = _z_with({"Glucose": 3.0, "pH": 3.0})
        assert (SyntheticEMRGenerator._pair_risk(dka, acidotic)
                > SyntheticEMRGenerator._pair_risk(dka, alkalotic))

    def test_clipped_per_pair(self):
        dla = archetype_by_name("dm_dla")
        extreme = _z_with({"Glucose": 50.0, "Lactate": 50.0})
        capped = SyntheticEMRGenerator._pair_risk(dla, extreme)
        weights = sum(abs(w) for _, _, w in dla.risk_pairs)
        assert capped <= 4.0 * weights + 1e-9

    def test_all_risk_pair_features_exist(self):
        from repro.data import ARCHETYPES
        for archetype in ARCHETYPES:
            for a, b, w in archetype.risk_pairs:
                feature_index(a)
                feature_index(b)
                assert w != 0.0
