"""Tests of the clinical feature schema."""

import pytest

from repro.data import (FEATURE_NAMES, FEATURES, NUM_FEATURES,
                        NUM_TIME_STEPS, feature_index)


class TestSchema:
    def test_thirty_seven_features(self):
        assert NUM_FEATURES == 37
        assert len(FEATURE_NAMES) == 37

    def test_forty_eight_hours(self):
        assert NUM_TIME_STEPS == 48

    def test_names_unique(self):
        assert len(set(FEATURE_NAMES)) == NUM_FEATURES

    def test_paper_case_study_features_present(self):
        for name in ("Glucose", "Lactate", "pH", "HCO3", "HCT", "HR",
                     "MAP", "Temp", "FiO2", "WBC", "Albumin"):
            assert name in FEATURE_NAMES

    def test_bounds_sane(self):
        for spec in FEATURES:
            assert spec.low < spec.high
            assert spec.low <= spec.mean <= spec.high
            assert spec.std > 0

    def test_kinds_valid(self):
        assert {spec.kind for spec in FEATURES} <= {"vital", "lab", "other"}

    def test_feature_index_round_trip(self):
        for i, name in enumerate(FEATURE_NAMES):
            assert feature_index(name) == i

    def test_feature_index_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown feature"):
            feature_index("Midichlorians")
