"""Fault-path tests: corruption and prefetch-thread lifecycle.

The streaming loader's failure contract is "fail loudly, terminate
cleanly": a bad shard raises :class:`ShardIntegrityError` naming the
shard in the *consumer* thread (never a hang), and abandoning an epoch
mid-stream — the consumer breaking out of the loop, or the generator
being garbage-collected — leaves no ``repro-shard-prefetch`` thread
behind.  Every test here mutates shard bytes, so each works on its own
copy of the session store.
"""

import gc
import shutil
import threading
import time

import numpy as np
import pytest

from repro.data import (ShardedDataLoader, ShardedDataset,
                        ShardIntegrityError)
from repro.data.shards import PREFETCH_THREAD_NAME

pytestmark = pytest.mark.shards


@pytest.fixture
def store_copy(shard_store, tmp_path):
    root = tmp_path / "store"
    shutil.copytree(shard_store, root)
    return root


def _prefetch_threads():
    return [t for t in threading.enumerate()
            if t.name == PREFETCH_THREAD_NAME]


def _assert_no_prefetch_threads(timeout=5.0):
    """The loader joins its worker on the main path; the GC path only
    signals it, so allow a short grace period before failing."""
    deadline = time.monotonic() + timeout
    while _prefetch_threads() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _prefetch_threads() == []


def _corrupt(root, shard="shard_00002", name="raw.npy", offset=2048):
    path = root / shard / name
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def test_corrupted_shard_raises_naming_the_shard(store_copy):
    _corrupt(store_copy)
    store = ShardedDataset.open(store_copy)
    loader = ShardedDataLoader(store, "mortality", batch_size=16)
    with pytest.raises(ShardIntegrityError, match="shard_00002"):
        for _ in loader.batches():
            pass
    _assert_no_prefetch_threads()


def test_corruption_error_mentions_checksum(store_copy):
    _corrupt(store_copy)
    store = ShardedDataset.open(store_copy)
    with pytest.raises(ShardIntegrityError, match="checksum"):
        store.validate()


def test_truncated_shard_raises_not_hangs(store_copy):
    """Truncation after open (structural checks already passed) must
    surface as ShardIntegrityError through the loader, not a hang."""
    store = ShardedDataset.open(store_copy)
    path = store_copy / "shard_00001" / "raw.npy"
    path.write_bytes(path.read_bytes()[:1000])
    loader = ShardedDataLoader(store, "mortality", batch_size=16)
    with pytest.raises(ShardIntegrityError, match="shard_00001"):
        for _ in loader.batches():
            pass
    _assert_no_prefetch_threads()


def test_truncation_detected_at_open(store_copy):
    path = store_copy / "shard_00003" / "raw.npy"
    path.write_bytes(path.read_bytes()[:1000])
    with pytest.raises(ShardIntegrityError, match="shard_00003"):
        ShardedDataset.open(store_copy)


def test_break_mid_epoch_leaves_no_threads(store_copy):
    store = ShardedDataset.open(store_copy)
    loader = ShardedDataLoader(store, "mortality", batch_size=8)
    consumed = 0
    for batch, labels in loader.batches(np.random.default_rng(0)):
        consumed += 1
        if consumed == 2:
            break                      # generator close -> finally path
    assert consumed == 2
    _assert_no_prefetch_threads()


def test_abandoned_generator_is_collected_cleanly(store_copy):
    store = ShardedDataset.open(store_copy)
    loader = ShardedDataLoader(store, "mortality", batch_size=8)
    stream = loader.batches(np.random.default_rng(1))
    next(stream)
    del stream                         # GC -> GeneratorExit -> finally
    gc.collect()
    _assert_no_prefetch_threads()


def test_completed_epoch_leaves_no_threads(store_copy):
    store = ShardedDataset.open(store_copy)
    count = sum(1 for _ in store.iter_batches("mortality", 16))
    assert count == 6
    _assert_no_prefetch_threads()


def test_loader_rejects_bad_arguments(store_copy):
    store = ShardedDataset.open(store_copy)
    with pytest.raises(TypeError, match="ShardedDataset"):
        ShardedDataLoader(store.materialize(), "mortality", 8)
    with pytest.raises(ValueError, match="batch_size"):
        ShardedDataLoader(store, "mortality", 0)
    with pytest.raises(ValueError, match="prefetch"):
        ShardedDataLoader(store, "mortality", 8, prefetch=0)
