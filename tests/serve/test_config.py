"""ServeConfig: validation, serialization, legacy shims, persistence."""

import json
import shutil
import warnings

import pytest

from repro.serve import (MicroBatcher, Predictor, PreprocessCache,
                         ServeConfig, ServeMetrics, resolve_config)

pytestmark = pytest.mark.serve


class TestValidation:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.batch_size == 64
        assert config.max_batch_size == 32
        assert config.capture is None
        assert config.workers == 2
        assert config.deadline_ms is None

    @pytest.mark.parametrize("field", ["batch_size", "max_batch_size",
                                       "cache_capacity", "max_captures",
                                       "workers", "queue_depth"])
    def test_integer_fields_must_be_positive(self, field):
        with pytest.raises(ValueError, match=field):
            ServeConfig(**{field: 0})

    def test_max_wait_ms_must_be_non_negative(self):
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServeConfig(max_wait_ms=-1.0)
        assert ServeConfig(max_wait_ms=0).max_wait_ms == 0.0

    def test_deadline_ms_positive_or_none(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            ServeConfig(deadline_ms=0.0)
        assert ServeConfig(deadline_ms=None).deadline_ms is None
        assert ServeConfig(deadline_ms=5).deadline_ms == 5.0

    def test_replace_revalidates(self):
        config = ServeConfig()
        with pytest.raises(ValueError):
            config.replace(workers=-3)
        assert config.replace(workers=4).workers == 4
        assert config.workers == 2  # frozen original untouched


class TestSerialization:
    def test_dict_round_trip(self):
        config = ServeConfig(batch_size=16, capture=True, workers=3,
                             deadline_ms=25.0)
        assert ServeConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip(self):
        config = ServeConfig(max_wait_ms=1.5, queue_depth=7)
        payload = json.loads(json.dumps(config.to_dict()))
        assert ServeConfig.from_dict(payload) == config

    def test_from_dict_ignores_unknown_keys_unless_strict(self):
        payload = {"batch_size": 8, "flux_capacitor": True}
        assert ServeConfig.from_dict(payload).batch_size == 8
        with pytest.raises(ValueError, match="flux_capacitor"):
            ServeConfig.from_dict(payload, strict=True)

    def test_from_run_config_reads_serve_block(self):
        config = ServeConfig.from_run_config(
            {"batch_size": 99, "serve": {"batch_size": 8, "workers": 5}})
        assert config.batch_size == 8
        assert config.workers == 5

    def test_from_run_config_falls_back_to_training_batch_size(self):
        assert ServeConfig.from_run_config({"batch_size": 24}).batch_size \
            == 24
        assert ServeConfig.from_run_config({}).batch_size == 64


class TestResolveConfig:
    def test_explicit_config_passes_through(self):
        config = ServeConfig(workers=7)
        assert resolve_config(config, {}, owner="X") is config

    def test_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning, match="cache_capacity"):
            resolved = resolve_config(None, {"capacity": 9}, owner="X")
        assert resolved.cache_capacity == 9

    def test_unknown_legacy_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="banana"):
            resolve_config(None, {"banana": 1}, owner="X")

    def test_config_plus_legacy_is_ambiguous(self):
        with pytest.raises(TypeError, match="both"):
            resolve_config(ServeConfig(), {"batch_size": 8}, owner="X")

    def test_non_serveconfig_config_is_a_type_error(self):
        with pytest.raises(TypeError, match="ServeConfig"):
            resolve_config({"batch_size": 8}, {}, owner="X")

    def test_base_seeds_defaults(self):
        base = ServeConfig(max_batch_size=4)
        assert resolve_config(None, {}, owner="X", base=base) == base
        with pytest.warns(DeprecationWarning):
            resolved = resolve_config(None, {"max_wait_ms": 9.0}, owner="X",
                                      base=base)
        assert resolved.max_batch_size == 4
        assert resolved.max_wait_ms == 9.0


class TestDeprecatedComponentKwargs:
    """Old per-component keywords keep working, with a warning."""

    def test_predictor_batch_size_kwarg(self, trained_run):
        trainer, _ = trained_run
        with pytest.warns(DeprecationWarning, match="batch_size"):
            predictor = Predictor(trainer.model, batch_size=8)
        assert predictor.batch_size == 8
        assert predictor.config.batch_size == 8

    def test_predictor_capture_kwarg(self, trained_run):
        trainer, _ = trained_run
        with pytest.warns(DeprecationWarning, match="capture"):
            predictor = Predictor(trainer.model, capture=True,
                                  max_captures=2)
        assert predictor.capture is True
        assert predictor.max_captures == 2

    def test_batcher_legacy_kwargs(self, trained_run):
        trainer, _ = trained_run
        predictor = Predictor(trainer.model)
        with pytest.warns(DeprecationWarning, match="max_batch_size"):
            batcher = MicroBatcher(predictor, max_batch_size=8,
                                   max_wait_ms=1.0)
        assert batcher.max_batch_size == 8
        assert batcher.max_wait_ms == 1.0

    def test_batcher_inherits_predictor_config(self, trained_run):
        trainer, _ = trained_run
        predictor = Predictor(trainer.model,
                              ServeConfig(max_batch_size=5))
        assert MicroBatcher(predictor).max_batch_size == 5

    def test_cache_capacity_kwarg(self, serve_splits):
        with pytest.warns(DeprecationWarning, match="cache_capacity"):
            cache = PreprocessCache(serve_splits.standardizer, capacity=3)
        assert cache.capacity == 3
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                PreprocessCache(serve_splits.standardizer, capacity=0)

    def test_config_and_legacy_together_raise(self, trained_run):
        trainer, _ = trained_run
        with pytest.raises(TypeError, match="both"):
            Predictor(trainer.model, ServeConfig(), batch_size=8)


class TestRunDirPersistence:
    @pytest.fixture
    def run_copy(self, trained_run, tmp_path):
        _, run_dir = trained_run
        copy = tmp_path / "run"
        shutil.copytree(run_dir, copy)
        return copy

    def test_load_restores_training_batch_size(self, run_copy):
        predictor = Predictor.load(run_copy)
        payload = json.loads((run_copy / "config.json").read_text())
        assert predictor.config.batch_size == payload["batch_size"]

    def test_plain_load_does_not_write(self, run_copy):
        before = (run_copy / "config.json").read_text()
        Predictor.load(run_copy)
        assert (run_copy / "config.json").read_text() == before

    def test_explicit_config_round_trips(self, run_copy):
        config = ServeConfig(batch_size=8, max_batch_size=4, workers=3,
                             deadline_ms=50.0)
        Predictor.load(run_copy, config=config)
        payload = json.loads((run_copy / "config.json").read_text())
        assert payload["serve"] == config.to_dict()
        assert Predictor.load(run_copy).config == config

    def test_persist_false_never_writes(self, run_copy):
        before = (run_copy / "config.json").read_text()
        predictor = Predictor.load(run_copy,
                                   config=ServeConfig(workers=9),
                                   persist=False)
        assert predictor.config.workers == 9
        assert (run_copy / "config.json").read_text() == before

    def test_capture_flag_still_persists(self, run_copy):
        Predictor.load(run_copy, capture=True)
        assert Predictor.load(run_copy).capture is True
        Predictor.load(run_copy, capture=False)
        assert Predictor.load(run_copy).capture is False

    def test_config_and_capture_together_raise(self, run_copy):
        with pytest.raises(TypeError, match="config"):
            Predictor.load(run_copy, config=ServeConfig(), capture=True)

    def test_loaded_config_drives_components(self, run_copy):
        config = ServeConfig(max_batch_size=6, cache_capacity=2)
        predictor = Predictor.load(run_copy, config=config,
                                   metrics=ServeMetrics())
        batcher = MicroBatcher(predictor)
        assert batcher.max_batch_size == 6
