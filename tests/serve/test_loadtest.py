"""Loadtest harness: report schema, floor checking, the CI smoke run.

``test_loadtest_smoke_meets_committed_floor`` is the pool lane's
regression gate: a small 2-worker loadtest must satisfy
``benchmarks/results/pool_floor.json`` (latency ceilings, a throughput
floor, ≥2 observed worker pids, zero client errors).  The floor file was
set 15-25× looser than the measured seed numbers, so it catches
deadlocks and order-of-magnitude regressions, not scheduler noise.
"""

import json
from pathlib import Path

import pytest

from repro.serve import ServeConfig, check_floor, run_loadtest

pytestmark = [pytest.mark.serve, pytest.mark.pool]

FLOOR_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / \
    "results" / "pool_floor.json"

SMOKE_CONFIG = ServeConfig(workers=2, max_batch_size=8, queue_depth=32,
                           cache_capacity=64)


@pytest.fixture(scope="module")
def smoke_report(trained_run, tmp_path_factory):
    _, run_dir = trained_run
    out_dir = tmp_path_factory.mktemp("loadtest")
    return run_loadtest(run_dir, config=SMOKE_CONFIG, num_requests=24,
                        num_streams=3, stream_steps=3, concurrency=8,
                        max_seconds=90.0, seed=0, out_dir=out_dir,
                        label="smoke")


class TestReportSchema:
    def test_headline_fields(self, smoke_report):
        assert smoke_report["schema"] == "repro.loadtest/v1"
        assert smoke_report["requests"] == 24
        assert smoke_report["stream_sessions"] == 3
        assert smoke_report["stream_steps"] == 9
        assert smoke_report["duration_seconds"] > 0
        assert smoke_report["throughput_rps"] > 0
        assert smoke_report["errors"] == []
        assert smoke_report["deadline_misses"] == 0

    def test_latency_percentiles_are_ordered(self, smoke_report):
        latency = smoke_report["latency_ms"]
        assert set(latency) == {"p50", "p95", "p99", "max"}
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"] \
            <= latency["max"]

    def test_real_multiprocess_fanout(self, smoke_report):
        workers = smoke_report["workers"]
        assert workers["configured"] == 2
        assert len(workers["pids"]) == 2
        assert set(workers["observed_pids"]) == set(workers["pids"])

    def test_report_written_as_serve_json(self, smoke_report):
        path = Path(smoke_report["report_path"])
        assert path.name.startswith("SERVE_smoke_")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.serve/v2"
        assert payload["extra"]["loadtest"]["schema"] == "repro.loadtest/v1"
        # Worker-side batch accounting merged into the parent report.
        assert payload["batches"] >= 1


class TestConfigResolution:
    """run_loadtest must honor the run dir's persisted ``serve`` block
    (regression: config=None silently fell back to ServeConfig())."""

    def _capture_pool_config(self, monkeypatch):
        import repro.serve.loadtest as loadtest_module
        captured = {}

        class _StopBeforeStart(Exception):
            pass

        def _fake_pool(run_dir, checkpoint="best", config=None, *,
                       metrics=None):
            captured["config"] = config
            raise _StopBeforeStart

        monkeypatch.setattr(loadtest_module, "ReplicaPool", _fake_pool)
        return captured, _StopBeforeStart

    @pytest.fixture
    def persisted_run_dir(self, tmp_path):
        run_dir = tmp_path / "persisted-run"
        run_dir.mkdir()
        (run_dir / "config.json").write_text(json.dumps({
            "batch_size": 16,
            "serve": {"workers": 3, "queue_depth": 7},
        }))
        return run_dir

    def test_defaults_come_from_persisted_serve_block(
            self, persisted_run_dir, monkeypatch):
        captured, stop = self._capture_pool_config(monkeypatch)
        with pytest.raises(stop):
            run_loadtest(persisted_run_dir, num_requests=1, num_streams=1,
                         stream_steps=1)
        config = captured["config"]
        assert config.workers == 3
        assert config.queue_depth == 7
        assert config.batch_size == 16

    def test_legacy_kwargs_overlay_the_persisted_block(
            self, persisted_run_dir, monkeypatch):
        captured, stop = self._capture_pool_config(monkeypatch)
        with pytest.warns(DeprecationWarning, match="workers"):
            with pytest.raises(stop):
                run_loadtest(persisted_run_dir, num_requests=1,
                             num_streams=1, stream_steps=1, workers=5)
        config = captured["config"]
        assert config.workers == 5
        assert config.queue_depth == 7  # persisted value survives

    def test_explicit_config_wins_outright(self, persisted_run_dir,
                                           monkeypatch):
        captured, stop = self._capture_pool_config(monkeypatch)
        explicit = ServeConfig(workers=4)
        with pytest.raises(stop):
            run_loadtest(persisted_run_dir, config=explicit, num_requests=1,
                         num_streams=1, stream_steps=1)
        assert captured["config"] is explicit


class TestFloor:
    def test_committed_floor_file_is_well_formed(self):
        floor = json.loads(FLOOR_PATH.read_text())
        assert floor["schema"] == "repro.loadtest-floor/v1"
        assert floor["min_observed_workers"] == 2
        assert floor["max_errors"] == 0

    def test_loadtest_smoke_meets_committed_floor(self, smoke_report):
        violations = check_floor(smoke_report, FLOOR_PATH)
        assert violations == [], "\n".join(violations)

    def test_check_floor_reports_every_violation(self, tmp_path):
        floor_path = tmp_path / "floor.json"
        floor_path.write_text(json.dumps({
            "max_p50_ms": 1.0, "max_p95_ms": 2.0, "max_p99_ms": 3.0,
            "min_throughput_rps": 1e6, "min_observed_workers": 4,
            "max_errors": 0,
        }))
        report = {
            "latency_ms": {"p50": 10.0, "p95": 20.0, "p99": 30.0,
                           "max": 40.0},
            "throughput_rps": 5.0,
            "workers": {"observed_pids": [1, 2]},
            "errors": ["RuntimeError('boom')"],
        }
        violations = check_floor(report, floor_path)
        assert len(violations) == 6
        assert any("p99" in v for v in violations)
        assert any("throughput" in v for v in violations)
        assert any("worker pid" in v for v in violations)
        assert any("boom" in v for v in violations)

    def test_missing_keys_are_not_checked(self, tmp_path):
        floor_path = tmp_path / "floor.json"
        floor_path.write_text(json.dumps({"max_p50_ms": 1e9}))
        report = {"latency_ms": {"p50": 1.0, "p95": 1.0, "p99": 1.0,
                                 "max": 1.0},
                  "throughput_rps": 0.0,
                  "workers": {"observed_pids": []}, "errors": ["x"]}
        assert check_floor(report, floor_path) == []
