"""Shared fixtures for the serving-runtime test suite.

One small GRU is trained once per session into a real run directory
(config.json with a model spec, Checkpointer weights, persisted
standardizer) so every test exercises the same artifacts the CLI
produces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_model
from repro.data import (NUM_FEATURES, SyntheticEMRGenerator,
                        train_val_test_split)
from repro.train import Trainer


@pytest.fixture(scope="session")
def serve_splits():
    admissions = SyntheticEMRGenerator().sample_many(
        60, np.random.default_rng(5))
    return train_val_test_split(admissions, np.random.default_rng(6))


@pytest.fixture(scope="session")
def trained_run(serve_splits, tmp_path_factory):
    """(trainer, run_dir): a short CLI-shaped training run."""
    run_dir = tmp_path_factory.mktemp("serve") / "gru-run"
    model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                        hidden_size=8)
    trainer = Trainer(model, "mortality", max_epochs=3, patience=10,
                      batch_size=16, seed=0, run_dir=str(run_dir))
    trainer.fit(serve_splits.train, serve_splits.validation)
    serve_splits.standardizer.save(run_dir / "standardizer.npz")
    return trainer, run_dir
