"""ReplicaPool: multi-process correctness, backpressure, deadlines.

The pool's bar is the same bit-identity bar as every other serving
surface: probabilities coming back from a forked worker equal a local
padded forward over the same rows, and sticky streaming steps equal the
full-prefix forward.  On top of that sit the operational guarantees —
real fan-out (≥2 pids answering), bounded in-flight requests, deadline
misses that free their slot, and a clean stop that fails leftovers.
"""

import asyncio
import json
import os
import queue as queue_module

import numpy as np
import pytest

from repro.baselines.spec import ModelSpec
from repro.metrics.probability import sigmoid_probs
from repro.serve import (Predictor, ReplicaPool, ServeConfig,
                         ServeDeadlineError, ServeMetrics,
                         ServeOverloadError, ServeRequestError,
                         ServeWorkerError)
from repro.serve.pool import _EXIT, _READY, _shard_for, _worker_main

pytestmark = [pytest.mark.serve, pytest.mark.pool]

POOL_CONFIG = ServeConfig(workers=2, max_batch_size=8, queue_depth=16,
                          cache_capacity=64)


@pytest.fixture(scope="module")
def running_pool(trained_run):
    _, run_dir = trained_run
    pool = ReplicaPool(run_dir, config=POOL_CONFIG,
                       metrics=ServeMetrics(label="pool-test"))
    with pool:
        yield pool


@pytest.fixture(scope="module")
def local_predictor(trained_run):
    """In-process reference the workers must match bit for bit."""
    _, run_dir = trained_run
    return Predictor.load(run_dir, persist=False)


class TestPoolCorrectness:
    def test_predicts_match_local_padded_forward(self, running_pool,
                                                 local_predictor,
                                                 serve_splits):
        for i in range(6):
            row = serve_splits.test.subset([i])
            probs = running_pool.predict_proba(row, timeout=30)
            expected = sigmoid_probs(local_predictor.predict_logits(
                row, pad_to=POOL_CONFIG.max_batch_size))
            assert np.array_equal(probs, expected), f"row {i}"

    def test_multi_row_request(self, running_pool, local_predictor,
                               serve_splits):
        rows = serve_splits.test.subset([0, 1, 2])
        probs = running_pool.predict_proba(rows, timeout=30)
        expected = sigmoid_probs(local_predictor.predict_logits(
            rows, pad_to=POOL_CONFIG.max_batch_size))
        assert probs.shape == (3,)
        assert np.array_equal(probs, expected)

    def test_oversized_request_is_rejected(self, running_pool,
                                           serve_splits):
        too_many = [i % len(serve_splits.test)
                    for i in range(POOL_CONFIG.max_batch_size + 1)]
        with pytest.raises(ValueError, match="max_batch_size"):
            running_pool.submit(serve_splits.test.subset(too_many))

    def test_fanout_reaches_both_workers(self, running_pool, serve_splits):
        futures = [running_pool.submit(serve_splits.test.subset([i % 4]))
                   for i in range(12)]
        for future in futures:
            future.result(timeout=30)
        assert len(running_pool.worker_pids) == 2
        assert running_pool.served_pids == set(running_pool.worker_pids)

    def test_streaming_steps_match_full_prefix(self, running_pool,
                                               local_predictor,
                                               serve_splits):
        row = serve_splits.test.subset([0])
        for t in range(1, 4):
            probs = running_pool.step(
                "pool-test-admission", row.values[:, t - 1],
                mask_t=row.mask[:, t - 1], deltas_t=row.deltas[:, t - 1],
                timeout=30)
            expected = sigmoid_probs(local_predictor.predict_logits(
                row.truncate(t)))
            assert np.array_equal(probs, expected), f"prefix {t}"

    def test_worker_error_propagates_with_details(self, running_pool):
        from repro.data import NUM_FEATURES
        bad = np.full((1, NUM_FEATURES), np.nan)
        with pytest.raises(ServeWorkerError, match="NaN"):
            running_pool.step("nan-admission", bad, timeout=30)

    def test_sticky_sharding_is_process_stable(self):
        for admission_id in ("a", "b", 17, ("x", 3)):
            index = _shard_for(admission_id, 4)
            assert index == _shard_for(admission_id, 4)
            assert 0 <= index < 4

    def test_concurrent_overflowing_predicts_all_resolve(self, running_pool,
                                                         serve_splits):
        # Pairs of 5-row predicts sum past max_batch_size=8; the
        # non-fitting one must lead its own batch, not crash the worker
        # (regression: it was mis-dispatched as a streaming step).
        rows = serve_splits.test.subset([0, 1, 2, 3, 4])
        futures = [running_pool.submit(rows) for _ in range(6)]
        for future in futures:
            assert future.result(timeout=30).shape == (5,)


class TestWorkerCoalescing:
    """``_worker_main`` run in-process over plain queues.

    Pre-filling the request queue before the worker loop starts makes
    the coalescing edge cases (overflow predicts, interleaved steps,
    the sentinel arriving mid-coalesce) deterministic — no forked
    processes, no timing races.
    """

    def _run_worker(self, run_dir, config, messages):
        requests, responses = queue_module.Queue(), queue_module.Queue()
        for message in messages:
            requests.put(message)
        _worker_main(0, str(run_dir), "best", config.to_dict(),
                     requests, responses)
        results = []
        while True:
            try:
                results.append(responses.get_nowait())
            except queue_module.Empty:
                return results

    def test_overflow_predict_leads_the_next_batch(self, trained_run,
                                                   local_predictor,
                                                   serve_splits):
        _, run_dir = trained_run
        config = POOL_CONFIG.replace(workers=1, max_batch_size=4)
        rows = serve_splits.test.subset([0, 1, 2])
        # 3 + 3 rows > max_batch_size=4: the second predict cannot
        # coalesce into the first batch and must be served as its own.
        results = self._run_worker(run_dir, config, [
            ("predict", 1, rows), ("predict", 2, rows), None])
        ready, first, second, exited = results
        assert ready[0] == _READY
        assert not str(ready[3]).startswith("error:")
        assert exited[0] == _EXIT
        expected = sigmoid_probs(local_predictor.predict_logits(
            rows, pad_to=config.max_batch_size))
        for rid, response in ((1, first), (2, second)):
            got_rid, ok, payload, _pid = response
            assert got_rid == rid and ok is True
            assert np.array_equal(payload, expected)

    def test_step_drained_mid_coalesce_is_served_as_step(self, trained_run,
                                                         local_predictor,
                                                         serve_splits):
        _, run_dir = trained_run
        config = POOL_CONFIG.replace(workers=1)
        rows = serve_splits.test.subset([1, 2])
        row = serve_splits.test.subset([0])
        results = self._run_worker(run_dir, config, [
            ("predict", 1, rows),
            ("step", 2, "coalesce-admission", row.values[:, 0],
             row.mask[:, 0], row.deltas[:, 0]),
            ("predict", 3, rows),
            None])
        ready, first, step, third, exited = results
        assert ready[0] == _READY and exited[0] == _EXIT
        expected_rows = sigmoid_probs(local_predictor.predict_logits(
            rows, pad_to=config.max_batch_size))
        for rid, response in ((1, first), (3, third)):
            got_rid, ok, payload, _pid = response
            assert got_rid == rid and ok is True
            assert np.array_equal(payload, expected_rows)
        got_rid, ok, payload, _pid = step
        assert got_rid == 2 and ok is True
        assert np.array_equal(payload, sigmoid_probs(
            local_predictor.predict_logits(row.truncate(1))))

    def test_sentinel_drained_mid_coalesce_still_serves_batch(
            self, trained_run, local_predictor, serve_splits):
        _, run_dir = trained_run
        config = POOL_CONFIG.replace(workers=1)
        rows = serve_splits.test.subset([0])
        results = self._run_worker(run_dir, config,
                                   [("predict", 1, rows), None])
        ready, first, exited = results
        assert ready[0] == _READY and exited[0] == _EXIT
        got_rid, ok, payload, _pid = first
        assert got_rid == 1 and ok is True
        assert np.array_equal(payload, sigmoid_probs(
            local_predictor.predict_logits(
                rows, pad_to=config.max_batch_size)))


class TestBackpressureAndDeadlines:
    def test_queue_depth_bounds_in_flight(self, trained_run, serve_splits):
        _, run_dir = trained_run
        pool = ReplicaPool(run_dir,
                           config=POOL_CONFIG.replace(queue_depth=2))
        with pool:
            _, first = pool._register()
            _, second = pool._register()
            assert pool.in_flight == 2
            with pytest.raises(ServeOverloadError, match="queue_depth"):
                pool.submit(serve_splits.test.subset([0]))
            # Abandoning one in-flight request frees its slot.
            assert pool._abandon(first) is True
            probs = pool.predict_proba(serve_splits.test.subset([0]),
                                       timeout=30)
            assert probs.shape == (1,)
        # stop() fails whatever was still pending.
        with pytest.raises(ServeRequestError, match="stopped"):
            second.result(timeout=1)

    def test_deadline_miss_raises_and_frees_slot(self, running_pool):
        from repro.serve import AsyncServeFrontend

        async def _main():
            frontend = AsyncServeFrontend(running_pool)
            _, future = running_pool._register()  # never resolved
            before = running_pool.in_flight
            with pytest.raises(ServeDeadlineError, match="deadline"):
                await frontend._await_future(future, 20)
            assert frontend.deadline_misses == 1
            assert running_pool.in_flight == before - 1

        asyncio.run(_main())

    def test_frontend_serves_through_the_pool(self, running_pool,
                                              local_predictor,
                                              serve_splits):
        from repro.serve import AsyncServeFrontend
        row = serve_splits.test.subset([1])

        async def _main():
            frontend = AsyncServeFrontend(
                running_pool, config=running_pool.config.replace(
                    deadline_ms=30_000))
            return await frontend.predict_proba(row)

        probs = asyncio.run(_main())
        expected = sigmoid_probs(local_predictor.predict_logits(
            row, pad_to=POOL_CONFIG.max_batch_size))
        assert np.array_equal(probs, expected)


class TestLifecycle:
    def test_submit_requires_running_pool(self, trained_run, serve_splits):
        _, run_dir = trained_run
        pool = ReplicaPool(run_dir, config=POOL_CONFIG)
        with pytest.raises(RuntimeError, match="not running"):
            pool.submit(serve_splits.test.subset([0]))

    def test_stop_terminates_workers_and_merges_metrics(self, trained_run,
                                                        serve_splits):
        _, run_dir = trained_run
        metrics = ServeMetrics(label="lifecycle")
        pool = ReplicaPool(run_dir, config=POOL_CONFIG, metrics=metrics)
        with pool:
            pool.predict_proba(serve_splits.test.subset([0]), timeout=30)
            processes = list(pool._processes)
        assert all(not p.is_alive() for p in processes)
        # The worker's own batch accounting merged in at shutdown.
        assert metrics.batch_count >= 1
        assert metrics.request_count >= 1

    def test_bad_run_dir_fails_startup_loudly(self, tmp_path):
        run_dir = tmp_path / "broken-run"
        run_dir.mkdir()
        (run_dir / "config.json").write_text(json.dumps({"batch_size": 8}))
        pool = ReplicaPool(run_dir, config=POOL_CONFIG)
        with pytest.raises(RuntimeError, match="replica startup failed"):
            pool.start()
        assert not pool._processes

    def test_worker_death_before_ready_tears_down_survivors(
            self, trained_run, tmp_path, monkeypatch):
        """A replica dying before its handshake must not leak the live
        ones: start() fails fast and terminates every started process."""
        import repro.serve.pool as pool_module
        _, run_dir = trained_run
        pid_file = tmp_path / "survivor.pid"

        def _flaky_worker(index, run_dir, checkpoint, config_payload,
                          requests, responses):
            if index == 0:
                os._exit(3)  # dies before _READY, like a segfault would
            pid_file.write_text(str(os.getpid()))
            responses.put((_READY, index, os.getpid(), "fingerprint"))
            while requests.get() is not None:
                pass

        monkeypatch.setattr(pool_module, "_worker_main", _flaky_worker)
        pool = ReplicaPool(run_dir, config=POOL_CONFIG)
        with pytest.raises(RuntimeError, match="died before reporting "
                                               "ready"):
            pool.start()
        assert pool._processes == []
        assert pool._worker_pids == []
        # The healthy replica was terminated and reaped, not leaked.
        survivor = int(pid_file.read_text())
        with pytest.raises(OSError):
            os.kill(survivor, 0)


class TestSpecFingerprint:
    def test_fingerprint_is_stable_and_spec_sensitive(self, local_predictor):
        spec = local_predictor.spec
        assert isinstance(spec, ModelSpec)
        fingerprint = spec.fingerprint()
        assert len(fingerprint) == 16
        assert fingerprint == spec.fingerprint()
        assert ModelSpec.from_dict(spec.to_dict()).fingerprint() \
            == fingerprint
        other = spec.to_dict()
        other["hyperparameters"] = dict(other["hyperparameters"],
                                        hidden_size=9)
        assert ModelSpec.from_dict(other).fingerprint() != fingerprint
