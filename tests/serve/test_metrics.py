"""ServeMetrics: accounting, derived statistics, and the report schema."""

import json
import threading

import pytest

from repro.serve import ServeMetrics

pytestmark = pytest.mark.serve


class TestAccounting:
    def test_counts_and_histogram(self):
        metrics = ServeMetrics("unit")
        for size in (4, 4, 8, 1):
            metrics.record_batch(size, 0.01)
        for latency in (0.001, 0.002, 0.003):
            metrics.record_request(latency)
        assert metrics.batch_count == 4
        assert metrics.request_count == 3
        assert metrics.batch_size_histogram() == {1: 1, 4: 2, 8: 1}
        assert metrics.mean_batch_size() == pytest.approx(17 / 4)

    def test_latency_quantiles(self):
        metrics = ServeMetrics()
        for ms in range(1, 101):
            metrics.record_request(ms / 1000.0)
        assert metrics.p50_latency == pytest.approx(0.0505, abs=1e-3)
        assert metrics.p95_latency == pytest.approx(0.09505, abs=1e-3)
        assert metrics.latency_quantile(100) == pytest.approx(0.1)

    def test_cache_hit_rate(self):
        metrics = ServeMetrics()
        assert metrics.cache_hit_rate == 0.0
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=False)
        assert metrics.cache_hit_rate == pytest.approx(2 / 3)

    def test_capture_counters(self):
        metrics = ServeMetrics()
        assert metrics.capture_hits == 0
        assert metrics.eager_fallbacks == 0
        metrics.record_capture(hit=True)
        metrics.record_capture(hit=True)
        metrics.record_capture(hit=False)
        assert metrics.capture_hits == 2
        assert metrics.eager_fallbacks == 1

    def test_empty_metrics_are_all_zero(self):
        metrics = ServeMetrics()
        assert metrics.request_count == 0
        assert metrics.batch_count == 0
        assert metrics.mean_batch_size() == 0.0
        assert metrics.p50_latency == 0.0


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        metrics = ServeMetrics()
        per_thread = 200

        def worker():
            for _ in range(per_thread):
                metrics.record_request(0.001)
                metrics.record_batch(2, 0.001)
                metrics.record_cache(hit=True)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.request_count == 8 * per_thread
        assert metrics.batch_count == 8 * per_thread
        assert metrics.cache_hit_rate == 1.0


class TestReporting:
    def _populated(self):
        metrics = ServeMetrics("demo run")
        metrics.record_batch(4, 0.02)
        metrics.record_batch(4, 0.02)
        metrics.record_request(0.005)
        metrics.record_request(0.015)
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=False)
        metrics.record_capture(hit=True)
        metrics.record_capture(hit=False)
        return metrics

    def test_as_dict_schema(self):
        payload = self._populated().as_dict(extra={"clients": 2})
        assert payload["schema"] == "repro.serve/v1"
        assert payload["requests"] == 2
        assert payload["batches"] == 2
        assert payload["batch_size_histogram"] == {"4": 2}
        assert payload["mean_batch_size"] == 4.0
        assert payload["latency_seconds"]["max"] == pytest.approx(0.015)
        assert payload["cache"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}
        assert payload["capture"] == {"hits": 1, "eager_fallbacks": 1}
        assert payload["extra"] == {"clients": 2}

    def test_table_mentions_the_headline_numbers(self):
        table = self._populated().table()
        assert "requests        : 2" in table
        assert "cache hit rate  : 50.0%" in table
        assert "4x2" in table
        assert "1 replay hits / 1 eager fallbacks" in table

    def test_table_omits_capture_line_when_unused(self):
        assert "replay hits" not in ServeMetrics().table()

    def test_save_writes_versioned_json(self, tmp_path):
        path = self._populated().save(tmp_path, extra={"note": "x"},
                                      stamp="20260806-120000")
        assert path.name == "SERVE_demo-run_20260806-120000.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.serve/v1"
        assert payload["created"] == "20260806-120000"
        assert payload["extra"] == {"note": "x"}

    def test_save_defaults_label(self, tmp_path):
        path = ServeMetrics().save(tmp_path, stamp="s")
        assert path.name == "SERVE_run_s.json"
