"""ServeMetrics: accounting, derived statistics, and the report schema."""

import json
import threading

import pytest

from repro.serve import ServeMetrics

pytestmark = pytest.mark.serve


class TestAccounting:
    def test_counts_and_histogram(self):
        metrics = ServeMetrics("unit")
        for size in (4, 4, 8, 1):
            metrics.record_batch(size, 0.01)
        for latency in (0.001, 0.002, 0.003):
            metrics.record_request(latency)
        assert metrics.batch_count == 4
        assert metrics.request_count == 3
        assert metrics.batch_size_histogram() == {1: 1, 4: 2, 8: 1}
        assert metrics.mean_batch_size() == pytest.approx(17 / 4)

    def test_latency_quantiles(self):
        metrics = ServeMetrics()
        for ms in range(1, 101):
            metrics.record_request(ms / 1000.0)
        assert metrics.p50_latency == pytest.approx(0.0505, abs=1e-3)
        assert metrics.p95_latency == pytest.approx(0.09505, abs=1e-3)
        assert metrics.latency_quantile(100) == pytest.approx(0.1)

    def test_cache_hit_rate(self):
        metrics = ServeMetrics()
        assert metrics.cache_hit_rate == 0.0
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=False)
        assert metrics.cache_hit_rate == pytest.approx(2 / 3)

    def test_capture_counters(self):
        metrics = ServeMetrics()
        assert metrics.capture_hits == 0
        assert metrics.eager_fallbacks == 0
        metrics.record_capture(hit=True)
        metrics.record_capture(hit=True)
        metrics.record_capture(hit=False)
        assert metrics.capture_hits == 2
        assert metrics.eager_fallbacks == 1

    def test_empty_metrics_are_all_zero(self):
        metrics = ServeMetrics()
        assert metrics.request_count == 0
        assert metrics.batch_count == 0
        assert metrics.mean_batch_size() == 0.0
        assert metrics.p50_latency == 0.0


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        metrics = ServeMetrics()
        per_thread = 200

        def worker():
            for _ in range(per_thread):
                metrics.record_request(0.001)
                metrics.record_batch(2, 0.001)
                metrics.record_cache(hit=True)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.request_count == 8 * per_thread
        assert metrics.batch_count == 8 * per_thread
        assert metrics.cache_hit_rate == 1.0


class TestReporting:
    def _populated(self):
        metrics = ServeMetrics("demo run")
        metrics.record_batch(4, 0.02)
        metrics.record_batch(4, 0.02)
        metrics.record_request(0.005)
        metrics.record_request(0.015)
        metrics.record_cache(hit=True)
        metrics.record_cache(hit=False)
        metrics.record_capture(hit=True)
        metrics.record_capture(hit=False)
        return metrics

    def test_as_dict_schema(self):
        payload = self._populated().as_dict(extra={"clients": 2})
        assert payload["schema"] == "repro.serve/v2"
        assert payload["requests"] == 2
        assert payload["batches"] == 2
        assert payload["batch_size_histogram"] == {"4": 2}
        assert payload["mean_batch_size"] == 4.0
        assert set(payload["latency_seconds"]) == {"p50", "p95", "p99", "max"}
        assert payload["latency_seconds"]["max"] == pytest.approx(0.015)
        assert payload["cache"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}
        assert payload["capture"] == {"hits": 1, "eager_fallbacks": 1}
        assert payload["stream"] == {"sessions": 0, "steps": 0,
                                     "native_steps": 0, "step_seconds": 0.0}
        assert payload["extra"] == {"clients": 2}

    def test_table_mentions_the_headline_numbers(self):
        table = self._populated().table()
        assert "requests        : 2" in table
        assert "cache hit rate  : 50.0%" in table
        assert "4x2" in table
        assert "1 replay hits / 1 eager fallbacks" in table

    def test_table_omits_capture_line_when_unused(self):
        assert "replay hits" not in ServeMetrics().table()

    def test_save_writes_versioned_json(self, tmp_path):
        path = self._populated().save(tmp_path, extra={"note": "x"},
                                      stamp="20260806-120000")
        assert path.name == "SERVE_demo-run_20260806-120000.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.serve/v2"
        assert payload["created"] == "20260806-120000"
        assert payload["extra"] == {"note": "x"}

    def test_save_defaults_label(self, tmp_path):
        path = ServeMetrics().save(tmp_path, stamp="s")
        assert path.name == "SERVE_run_s.json"


class TestPercentiles:
    def test_known_sequence_quantiles(self):
        metrics = ServeMetrics()
        for ms in range(1, 101):  # 1..100 ms
            metrics.record_request(ms / 1000.0)
        # numpy linear interpolation on 100 points.
        assert metrics.p50_latency == pytest.approx(0.0505)
        assert metrics.p95_latency == pytest.approx(0.09505)
        assert metrics.p99_latency == pytest.approx(0.09901)
        payload = metrics.as_dict()
        assert payload["latency_seconds"]["p99"] == \
            pytest.approx(metrics.p99_latency)

    def test_single_sample_is_every_quantile(self):
        metrics = ServeMetrics()
        metrics.record_request(0.042)
        for q in (0, 50, 95, 99, 100):
            assert metrics.latency_quantile(q) == pytest.approx(0.042)


class TestStreamCounters:
    def test_stream_accounting(self):
        metrics = ServeMetrics()
        metrics.record_stream_session()
        metrics.record_stream_step(0.001, native=True)
        metrics.record_stream_step(0.002, native=True)
        metrics.record_stream_step(0.003, native=False)
        assert metrics.stream_step_count == 3
        payload = metrics.as_dict()
        assert payload["stream"]["sessions"] == 1
        assert payload["stream"]["steps"] == 3
        assert payload["stream"]["native_steps"] == 2
        assert payload["stream"]["step_seconds"] == pytest.approx(0.006)
        assert "stream steps    : 3 (2 native) over 1 sessions" \
            in metrics.table()


class TestMerge:
    def _worker(self, latencies, batches=((4, 0.01),), streams=0):
        metrics = ServeMetrics()
        for latency in latencies:
            metrics.record_request(latency)
        for size, seconds in batches:
            metrics.record_batch(size, seconds)
        for _ in range(streams):
            metrics.record_stream_step(0.001, native=True)
        return metrics

    def test_merge_snapshot_combines_counters(self):
        parent = self._worker([0.001, 0.002])
        child = self._worker([0.003, 0.004], batches=((4, 0.01), (8, 0.02)),
                             streams=2)
        parent.merge_snapshot(child.snapshot())
        assert parent.request_count == 4
        assert parent.batch_size_histogram() == {4: 2, 8: 1}
        assert parent.stream_step_count == 2
        assert parent.latency_quantile(100) == pytest.approx(0.004)

    def test_snapshot_round_trips_through_json(self):
        child = self._worker([0.005], streams=1)
        child.record_cache(hit=True)
        child.record_capture(hit=False)
        snapshot = json.loads(json.dumps(child.snapshot()))
        parent = ServeMetrics()
        parent.merge_snapshot(snapshot)
        assert parent.as_dict() == child.as_dict()

    def test_merge_across_pool_workers_matches_single_accumulator(self):
        workers = [self._worker([i / 1000.0 for i in range(1, 11)],
                                batches=((k + 1, 0.01),), streams=k)
                   for k in range(3)]
        merged = ServeMetrics()
        for worker in workers:
            merged.merge(worker)
        flat = ServeMetrics()
        for worker in workers:
            for latency in worker.snapshot()["request_latencies"]:
                flat.record_request(latency)
        assert merged.request_count == flat.request_count == 30
        assert merged.p95_latency == pytest.approx(flat.p95_latency)
        assert merged.batch_size_histogram() == {1: 1, 2: 1, 3: 1}
