"""Streaming inference: bit-identity at every prefix, for every model.

The contract under test is the serving tier's strongest claim: after
``t`` calls to :meth:`StreamingSession.step`, the returned probabilities
equal ``predict_proba`` over the same ``t``-step prefix **bit for bit**,
in both dtype planes — whether the model streams natively (O(1) state
updates through ``stream_step``), incrementally (cached per-step
projections + attention readout over the cache), or by exact prefix
replay.
"""

import numpy as np
import pytest

from repro.baselines import ALL_MODEL_NAMES, build_model
from repro.data import NUM_FEATURES, SyntheticEMRGenerator
from repro.data.dataset import train_val_test_split
from repro.metrics.probability import sigmoid_probs, softmax_probs
from repro.nn.dtype import autocast
from repro.serve import (Predictor, ServeMetrics, SessionStore,
                         StreamingSession)

pytestmark = pytest.mark.serve

NATIVE_MODELS = {"GRU", "GRU-D", "StageNet", "ConCare"}
INCREMENTAL_MODELS = {"RETAIN", "Dipole_l", "Dipole_g", "Dipole_c", "SAnD",
                      "ELDA-Net", "ELDA-Net-T", "ELDA-Net-Fbi",
                      "ELDA-Net-Fbi*", "ELDA-Net-Ffm", "ELDA-Net-Ffm*"}
PREFIX_STEPS = 5


@pytest.fixture(scope="module")
def stream_batch():
    """Two admissions, truncated to a short window (keeps replay cheap)."""
    admissions = SyntheticEMRGenerator().sample_many(
        30, np.random.default_rng(5))
    splits = train_val_test_split(admissions, np.random.default_rng(6))
    return splits.test.subset([0, 1]).truncate(PREFIX_STEPS)


def _probs(logits):
    return sigmoid_probs(logits) if logits.ndim == 1 else softmax_probs(logits)


def _stream_vs_full(model_name, batch, dtype):
    """Step a session through ``batch`` asserting prefix bit-identity.

    A prefix where BOTH paths raise (models needing >= 2 steps, e.g.
    Dipole's attention over t-1 earlier steps) counts as covered: the
    session must keep the buffered observation and serve the next
    prefix correctly.
    """
    with autocast(dtype):
        model = build_model(model_name, NUM_FEATURES,
                            np.random.default_rng(0))
        predictor = Predictor(model)
        assert bool(getattr(model, "stream_native", False)) == \
            (model_name in NATIVE_MODELS)
        assert bool(getattr(model, "stream_incremental", False)) == \
            (model_name in INCREMENTAL_MODELS)
        session = predictor.start_stream(batch_size=len(batch))
        covered = 0
        for t in range(1, batch.num_time_steps + 1):
            try:
                expected = _probs(predictor.predict_logits(
                    batch.truncate(t)))
            except Exception:
                with pytest.raises(Exception):
                    session.step(batch.values[:, t - 1],
                                 batch.mask[:, t - 1],
                                 batch.deltas[:, t - 1])
                continue
            streamed = session.step(batch.values[:, t - 1],
                                    batch.mask[:, t - 1],
                                    batch.deltas[:, t - 1])
            assert streamed.dtype == expected.dtype
            assert np.array_equal(streamed, expected), \
                f"{model_name} diverges at prefix {t} under {dtype}"
            covered += 1
        assert covered >= batch.num_time_steps - 1
        assert session.steps == batch.num_time_steps


@pytest.mark.parametrize("model_name", ALL_MODEL_NAMES)
def test_streaming_bit_identity_float64(model_name, stream_batch):
    _stream_vs_full(model_name, stream_batch, np.float64)


@pytest.mark.parametrize("model_name", ALL_MODEL_NAMES)
def test_streaming_bit_identity_float32(model_name, stream_batch):
    _stream_vs_full(model_name, stream_batch, np.float32)


@pytest.mark.parametrize("model_name",
                         sorted(NATIVE_MODELS | INCREMENTAL_MODELS))
def test_single_admission_streams_bit_identically(model_name, stream_batch):
    """n=1 is the serving case — and the BLAS row-stability danger zone."""
    _stream_vs_full(model_name, stream_batch.subset([0]),
                    np.float64)


def test_mask_aware_gru_streams_bit_identically(stream_batch):
    with autocast(np.float64):
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            mask_aware=True)
        predictor = Predictor(model)
        session = predictor.start_stream(batch_size=len(stream_batch))
        for t in range(1, stream_batch.num_time_steps + 1):
            streamed = session.step(stream_batch.values[:, t - 1],
                                    stream_batch.mask[:, t - 1],
                                    stream_batch.deltas[:, t - 1])
            expected = _probs(predictor.predict_logits(
                stream_batch.truncate(t)))
            assert np.array_equal(streamed, expected), f"prefix {t}"


class TestSessionBehavior:
    @pytest.fixture()
    def gru_predictor(self):
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=8)
        return Predictor(model)

    def test_reset_restarts_from_zero(self, gru_predictor, stream_batch):
        session = gru_predictor.start_stream(batch_size=2)
        first = session.step(stream_batch.values[:, 0],
                             stream_batch.mask[:, 0])
        session.step(stream_batch.values[:, 1], stream_batch.mask[:, 1])
        session.reset()
        assert session.steps == 0
        again = session.step(stream_batch.values[:, 0],
                             stream_batch.mask[:, 0])
        assert np.array_equal(first, again)

    def test_predictor_step_delegates(self, gru_predictor, stream_batch):
        session = gru_predictor.start_stream(batch_size=2)
        probs = gru_predictor.step(session, stream_batch.values[:, 0])
        assert probs.shape == (2,)
        assert session.steps == 1

    def test_rejects_wrong_batch_size(self, gru_predictor, stream_batch):
        session = gru_predictor.start_stream(batch_size=1)
        with pytest.raises(ValueError, match="batch_size"):
            session.step(stream_batch.values[:, 0])

    def test_rejects_wrong_feature_count(self, gru_predictor):
        session = gru_predictor.start_stream(batch_size=1)
        with pytest.raises(ValueError, match="features"):
            session.step(np.zeros((1, 3)))

    def test_rejects_nans(self, gru_predictor):
        session = gru_predictor.start_stream(batch_size=1)
        row = np.zeros((1, NUM_FEATURES))
        row[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            session.step(row)

    def test_rejects_mismatched_mask_shape(self, gru_predictor):
        session = gru_predictor.start_stream(batch_size=1)
        with pytest.raises(ValueError, match="mask_t"):
            session.step(np.zeros((1, NUM_FEATURES)),
                         np.ones((2, NUM_FEATURES), dtype=bool))

    def test_rejects_non_inference_model(self):
        with pytest.raises(TypeError, match="predict_logits"):
            StreamingSession(object())

    def test_metrics_counters(self, stream_batch):
        metrics = ServeMetrics()
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=8)
        predictor = Predictor(model, metrics=metrics)
        session = predictor.start_stream(batch_size=2)
        session.step(stream_batch.values[:, 0])
        session.step(stream_batch.values[:, 1])
        payload = metrics.as_dict()["stream"]
        assert payload["sessions"] == 1
        assert payload["steps"] == 2
        assert payload["native_steps"] == 2

    def test_incremental_steps_count_as_native(self, stream_batch):
        """Incremental attention streaming shares the native counter:
        the schema stays two-bucket (native vs replay) and incremental
        steps are by construction not replays."""
        metrics = ServeMetrics()
        model = build_model("RETAIN", NUM_FEATURES, np.random.default_rng(0))
        predictor = Predictor(model, metrics=metrics)
        session = predictor.start_stream(batch_size=2)
        session.step(stream_batch.values[:, 0])
        session.step(stream_batch.values[:, 1])
        payload = metrics.as_dict()["stream"]
        assert payload["sessions"] == 1
        assert payload["steps"] == 2
        assert payload["native_steps"] == 2
        assert set(payload) >= {"sessions", "steps", "native_steps"}

    def test_incremental_reset_restarts_from_zero(self, stream_batch):
        model = build_model("RETAIN", NUM_FEATURES, np.random.default_rng(0))
        session = Predictor(model).start_stream(batch_size=2)
        first = session.step(stream_batch.values[:, 0])
        session.step(stream_batch.values[:, 1])
        session.reset()
        assert session.steps == 0
        again = session.step(stream_batch.values[:, 0])
        assert np.array_equal(first, again)

    def test_incremental_model_buffers_rejected_short_prefix(
            self, stream_batch):
        """Dipole needs >= 2 steps; the t=1 observation must survive."""
        model = build_model("Dipole_l", NUM_FEATURES,
                            np.random.default_rng(0))
        predictor = Predictor(model)
        session = predictor.start_stream(batch_size=2)
        with pytest.raises(Exception):
            session.step(stream_batch.values[:, 0], stream_batch.mask[:, 0])
        assert session.steps == 1
        streamed = session.step(stream_batch.values[:, 1],
                                stream_batch.mask[:, 1])
        expected = _probs(predictor.predict_logits(stream_batch.truncate(2)))
        assert np.array_equal(streamed, expected)


class TestSessionStore:
    @pytest.fixture()
    def store(self):
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=8)
        return SessionStore(Predictor(model), capacity=2)

    def test_sessions_are_per_admission_and_sticky(self, store,
                                                   stream_batch):
        row = stream_batch.subset([0])
        store.step("a", row.values[:, 0])
        store.step("a", row.values[:, 1])
        assert store.session("a").steps == 2
        store.step("b", row.values[:, 0])
        assert store.session("b").steps == 1

    def test_lru_eviction(self, store, stream_batch):
        row = stream_batch.subset([0])
        for admission_id in ("a", "b", "c"):
            store.step(admission_id, row.values[:, 0])
        assert len(store) == 2
        assert "a" not in store
        assert "c" in store

    def test_close_drops_state(self, store, stream_batch):
        row = stream_batch.subset([0])
        store.step("a", row.values[:, 0])
        assert store.close("a") is True
        assert store.close("a") is False
        store.step("a", row.values[:, 0])
        assert store.session("a").steps == 1
