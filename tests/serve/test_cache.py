"""PreprocessCache: pipeline fidelity, hit/miss accounting, LRU eviction."""

import threading

import numpy as np
import pytest

from repro.data import SyntheticEMRGenerator, build_dataset
from repro.serve import PreprocessCache, ServeMetrics, prepare_admission

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def admissions():
    return SyntheticEMRGenerator().sample_many(12, np.random.default_rng(9))


@pytest.fixture(scope="module")
def standardizer(admissions):
    _, standardizer = build_dataset(admissions)
    return standardizer


class TestPrepareAdmission:
    def test_matches_the_training_pipeline(self, admissions, standardizer):
        """Serving-side preparation == build_dataset, array for array."""
        cohort, _ = build_dataset(admissions, standardizer=standardizer)
        for i, admission in enumerate(admissions):
            prepared = prepare_admission(admission.values, standardizer)
            np.testing.assert_array_equal(prepared.values, cohort.values[i:i + 1])
            np.testing.assert_array_equal(prepared.mask, cohort.mask[i:i + 1])
            np.testing.assert_array_equal(prepared.deltas,
                                          cohort.deltas[i:i + 1])
            np.testing.assert_array_equal(prepared.ever_observed,
                                          cohort.ever_observed[i:i + 1])

    def test_single_row_and_no_nans(self, admissions, standardizer):
        prepared = prepare_admission(admissions[0].values, standardizer)
        assert len(prepared) == 1
        assert not np.isnan(prepared.values).any()


class TestAccounting:
    def test_hits_and_misses(self, admissions, standardizer):
        cache = PreprocessCache(standardizer)
        cache.get("a", admissions[0].values)
        cache.get("b", admissions[1].values)
        cache.get("a")
        cache.get("a")
        assert (cache.hits, cache.misses) == (2, 2)
        assert cache.hit_rate == 0.5
        assert len(cache) == 2
        assert "a" in cache and "c" not in cache

    def test_hit_returns_the_cached_object(self, admissions, standardizer):
        cache = PreprocessCache(standardizer)
        first = cache.get("a", admissions[0].values)
        assert cache.get("a") is first

    def test_miss_without_raw_values_raises(self, standardizer):
        cache = PreprocessCache(standardizer)
        with pytest.raises(KeyError, match="not cached"):
            cache.get("ghost")

    def test_metrics_sink_sees_every_lookup(self, admissions, standardizer):
        metrics = ServeMetrics("unit")
        cache = PreprocessCache(standardizer, metrics=metrics)
        cache.get("a", admissions[0].values)
        cache.get("a")
        cache.get("a")
        assert metrics.cache_hit_rate == pytest.approx(2 / 3)


class TestEviction:
    def test_lru_order(self, admissions, standardizer):
        cache = PreprocessCache(standardizer, capacity=2)
        cache.get("a", admissions[0].values)
        cache.get("b", admissions[1].values)
        cache.get("a")  # refresh a; b is now least recently used
        cache.get("c", admissions[2].values)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_invalidate_and_clear(self, admissions, standardizer):
        cache = PreprocessCache(standardizer)
        cache.get("a", admissions[0].values)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.get("a", admissions[0].values)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_zero_capacity(self, standardizer):
        with pytest.raises(ValueError, match="capacity"):
            PreprocessCache(standardizer, capacity=0)


class TestThreadSafety:
    def test_concurrent_lookups_stay_consistent(self, admissions,
                                                standardizer):
        cache = PreprocessCache(standardizer, capacity=8)
        lookups_per_thread = 50

        def worker(seed):
            order = np.random.default_rng(seed).integers(
                0, len(admissions), lookups_per_thread)
            for i in order:
                cache.get(int(i), admissions[int(i)].values)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits + cache.misses == 6 * lookups_per_thread
        assert len(cache) <= 8
