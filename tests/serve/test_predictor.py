"""Predictor: protocol coverage, validation, and bit-identity guarantees."""

import json
import shutil

import numpy as np
import pytest

from repro.baselines import build_model
from repro.data import NUM_FEATURES
from repro.serve import Predictor, ServeMetrics, load_predictor

pytestmark = pytest.mark.serve

PROTOCOL_MODELS = {
    "LR": {},
    "GRU": dict(hidden_size=6),
    "GRU-D": dict(hidden_size=6),
    "RETAIN": dict(embedding_size=6, alpha_hidden=4, beta_hidden=4),
    "ELDA-Net": dict(embedding_size=4, hidden_size=6, compression=2),
}


class TestInferenceProtocol:
    @pytest.mark.parametrize("name", sorted(PROTOCOL_MODELS))
    def test_registry_models_serve_probabilities(self, name, tiny_dataset):
        model = build_model(name, NUM_FEATURES, np.random.default_rng(0),
                            **PROTOCOL_MODELS[name])
        batch = tiny_dataset.subset(np.arange(5))
        predictor = Predictor(model)
        probs = predictor.predict_proba(batch)
        assert probs.shape == (5,)
        assert np.all((probs >= 0) & (probs <= 1))
        labels = predictor.predict(batch)
        assert set(np.unique(labels)) <= {0, 1}

    def test_rejects_models_without_the_protocol(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="inference protocol"):
            Predictor(Opaque())

    def test_forward_builds_no_gradient_graph(self, tiny_dataset):
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=6)
        logits = model.predict_logits(tiny_dataset.subset(np.arange(4)))
        tensor_logits = model.forward_batch(tiny_dataset.subset(np.arange(4)))
        # predict_logits returns plain arrays from a no-grad forward...
        assert isinstance(logits, np.ndarray)
        # ...matching the training-mode-off graph forward numerically.
        np.testing.assert_array_equal(logits, tensor_logits.data)

    def test_eval_restores_training_mode(self, tiny_dataset):
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=6)
        model.train()
        model.predict_proba(tiny_dataset.subset(np.arange(2)))
        assert model.training is True


class TestValidation:
    @pytest.fixture()
    def predictor(self):
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=6)
        return Predictor(model)

    def test_rejects_non_dataset_objects(self, predictor):
        with pytest.raises(ValueError, match="lacks required array"):
            predictor.validate(object())

    def test_rejects_wrong_rank(self, predictor, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(2))
        bad = type("B", (), dict(values=batch.values[0], mask=batch.mask,
                                 ever_observed=batch.ever_observed,
                                 deltas=batch.deltas))()
        with pytest.raises(ValueError, match=r"must be \(N, T, C\)"):
            predictor.validate(bad)

    def test_rejects_feature_count_mismatch(self, predictor, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(2))
        bad = type("B", (), dict(
            values=batch.values[:, :, :5], mask=batch.mask[:, :, :5],
            ever_observed=batch.ever_observed[:, :5],
            deltas=batch.deltas[:, :, :5]))()
        with pytest.raises(ValueError, match="trained on"):
            predictor.validate(bad)

    def test_rejects_nan_values(self, predictor, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(2))
        values = batch.values.copy()
        values[0, 0, 0] = np.nan
        bad = type("B", (), dict(values=values, mask=batch.mask,
                                 ever_observed=batch.ever_observed,
                                 deltas=batch.deltas))()
        with pytest.raises(ValueError, match="NaN"):
            predictor.validate(bad)

    def test_rejects_mask_shape_mismatch(self, predictor, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(2))
        bad = type("B", (), dict(values=batch.values, mask=batch.mask[:1],
                                 ever_observed=batch.ever_observed,
                                 deltas=batch.deltas))()
        with pytest.raises(ValueError, match="batch.mask"):
            predictor.validate(bad)


class TestBitIdentity:
    def test_bulk_matches_trainer_predict_proba(self, trained_run,
                                                serve_splits):
        trainer, run_dir = trained_run
        reference = trainer.engine.predict_proba(serve_splits.test)
        predictor = Predictor.load(run_dir)
        served = predictor.predict_proba(serve_splits.test)
        np.testing.assert_array_equal(served, reference)

    def test_padded_forward_is_composition_independent(self, tiny_dataset):
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=6)
        predictor = Predictor(model)
        batch = tiny_dataset.subset(np.arange(8))
        together = predictor.predict_logits(batch, pad_to=16)
        for i in range(8):
            alone = predictor.predict_logits(
                tiny_dataset.subset(np.asarray([i])), pad_to=16)
            np.testing.assert_array_equal(alone, together[i:i + 1])

    def test_pad_to_rejects_oversized_batches(self, tiny_dataset):
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=6)
        with pytest.raises(ValueError, match="exceeds pad_to"):
            Predictor(model).predict_logits(
                tiny_dataset.subset(np.arange(8)), pad_to=4)


class TestLoad:
    def test_round_trip_restores_spec_and_batch_size(self, trained_run):
        trainer, run_dir = trained_run
        predictor = Predictor.load(run_dir)
        assert predictor.spec.name == "GRU"
        assert predictor.spec.hyperparameters == {"hidden_size": 8}
        assert predictor.batch_size == trainer.batch_size

    def test_best_and_last_checkpoints_load(self, trained_run, serve_splits):
        _, run_dir = trained_run
        batch = serve_splits.test.subset(np.arange(4))
        for checkpoint in ("best", "last"):
            probs = Predictor.load(run_dir, checkpoint=checkpoint) \
                .predict_proba(batch)
            assert probs.shape == (4,)

    def test_rejects_unknown_checkpoint_name(self, trained_run):
        _, run_dir = trained_run
        with pytest.raises(ValueError, match="best.*last"):
            Predictor.load(run_dir, checkpoint="median")

    def test_missing_run_dir_is_a_helpful_error(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="config.json"):
            Predictor.load(tmp_path / "nope")

    def test_module_level_alias(self, trained_run):
        _, run_dir = trained_run
        assert load_predictor(run_dir).spec.name == "GRU"


class TestMetricsIntegration:
    def test_forwards_are_recorded(self, tiny_dataset):
        metrics = ServeMetrics("unit")
        model = build_model("LR", NUM_FEATURES, np.random.default_rng(0))
        predictor = Predictor(model, batch_size=4, metrics=metrics)
        predictor.predict_proba(tiny_dataset.subset(np.arange(10)))
        assert metrics.batch_count == 3  # 4 + 4 + 2
        assert metrics.batch_size_histogram() == {2: 1, 4: 2}


class _UncapturableModel:
    """Implements the inference protocol but computes outside the op
    layer, so trace validation rejects it."""

    def predict_logits(self, batch):
        return np.asarray(batch.values).sum(axis=(1, 2))

    def predict_proba(self, batch):
        return 1.0 / (1.0 + np.exp(-self.predict_logits(batch)))

    def named_parameters(self):
        return iter(())


class TestCapture:
    @pytest.fixture()
    def run_copy(self, trained_run, tmp_path):
        """A private copy of the trained run dir — capture persistence
        rewrites config.json, which must not leak into the shared
        session fixture."""
        _, run_dir = trained_run
        dest = tmp_path / "run"
        shutil.copytree(run_dir, dest)
        return dest

    def test_capture_serving_is_bit_identical(self, run_copy, serve_splits):
        metrics = ServeMetrics("capture")
        eager = Predictor.load(run_copy)
        captured = Predictor.load(run_copy, capture=True, metrics=metrics)
        reference = eager.predict_proba(serve_splits.test)
        served = captured.predict_proba(serve_splits.test)
        np.testing.assert_array_equal(served, reference)
        assert metrics.capture_hits > 0
        assert metrics.eager_fallbacks == 0
        # same graphs replay again on a second pass
        np.testing.assert_array_equal(
            captured.predict_proba(serve_splits.test), reference)

    def test_pad_to_pins_the_shape_to_one_graph(self, tiny_dataset):
        metrics = ServeMetrics("padded")
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=6)
        predictor = Predictor(model, metrics=metrics, capture=True,
                              max_captures=1)
        for size in (1, 3, 5):
            batch = tiny_dataset.subset(np.arange(size))
            np.testing.assert_array_equal(
                predictor.predict_logits(batch, pad_to=8),
                Predictor(model).predict_logits(batch, pad_to=8))
        assert metrics.capture_hits == 3
        assert metrics.eager_fallbacks == 0

    def test_shape_budget_overflow_falls_back_to_eager(self, tiny_dataset):
        metrics = ServeMetrics("budget")
        model = build_model("LR", NUM_FEATURES, np.random.default_rng(0))
        predictor = Predictor(model, metrics=metrics, capture=True,
                              max_captures=1)
        predictor.predict_logits(tiny_dataset.subset(np.arange(2)))
        predictor.predict_logits(tiny_dataset.subset(np.arange(5)))
        assert metrics.capture_hits == 1
        assert metrics.eager_fallbacks == 1

    def test_uncapturable_model_serves_eagerly_forever(self, tiny_dataset):
        metrics = ServeMetrics("fallback")
        predictor = Predictor(_UncapturableModel(), metrics=metrics,
                              capture=True)
        batch = tiny_dataset.subset(np.arange(3))
        expected = np.asarray(batch.values).sum(axis=(1, 2))
        for _ in range(2):
            np.testing.assert_array_equal(predictor.predict_logits(batch),
                                          expected)
        assert metrics.capture_hits == 0
        assert metrics.eager_fallbacks == 2

    def test_storage_swap_invalidates_then_retraces(self, tiny_dataset):
        metrics = ServeMetrics("swap")
        model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=6)
        predictor = Predictor(model, metrics=metrics, capture=True)
        batch = tiny_dataset.subset(np.arange(3))
        predictor.predict_logits(batch)            # trace + replay
        for _, param in model.named_parameters():  # Module.to()-style swap
            param.data = param.data.copy()
        swapped = predictor.predict_logits(batch)  # stale graph -> eager
        retraced = predictor.predict_logits(batch)  # fresh trace
        np.testing.assert_array_equal(swapped, model.predict_logits(batch))
        np.testing.assert_array_equal(retraced, swapped)
        assert metrics.capture_hits == 2
        assert metrics.eager_fallbacks == 1

    def test_capture_choice_persists_in_the_run_dir(self, run_copy):
        assert Predictor.load(run_copy).capture is False
        Predictor.load(run_copy, capture=True)
        persisted = json.loads((run_copy / "config.json").read_text())
        assert persisted["serve"]["capture"] is True
        assert Predictor.load(run_copy).capture is True
        assert load_predictor(run_copy).capture is True
        Predictor.load(run_copy, capture=False)
        assert Predictor.load(run_copy).capture is False

    def test_bulk_capture_matches_trainer_reference(self, run_copy,
                                                    trained_run,
                                                    serve_splits):
        """The strongest end-to-end claim: capture serving reproduces
        the training engine's validation scores bit-for-bit."""
        trainer, _ = trained_run
        reference = trainer.engine.predict_proba(serve_splits.test)
        served = Predictor.load(run_copy, capture=True) \
            .predict_proba(serve_splits.test)
        np.testing.assert_array_equal(served, reference)
