"""MicroBatcher: coalescing, bit-identity, threading, error fan-out."""

import gc
import threading
import time

import numpy as np
import pytest

from repro.baselines import build_model
from repro.data import NUM_FEATURES
from repro.serve import (MicroBatcher, Predictor, ServeConfig,
                         ServeMetrics, ServeRequestError)

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def predictor():
    model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                        hidden_size=6)
    return Predictor(model)


@pytest.fixture()
def rows(tiny_dataset):
    return [tiny_dataset.subset(np.asarray([i])) for i in range(24)]


class TestLifecycle:
    def test_submit_requires_running_worker(self, predictor, rows):
        batcher = MicroBatcher(predictor)
        with pytest.raises(RuntimeError, match="not running"):
            batcher.submit(rows[0])

    def test_double_start_rejected(self, predictor):
        with MicroBatcher(predictor) as batcher:
            with pytest.raises(RuntimeError, match="already started"):
                batcher.start()

    def test_stop_drains_outstanding_requests(self, predictor, rows):
        batcher = MicroBatcher(predictor,
                              ServeConfig(max_batch_size=8, max_wait_ms=50))
        batcher.start()
        handles = [batcher.submit(r) for r in rows[:8]]
        batcher.stop()
        assert all(h.done() for h in handles)
        assert all(h.result().shape == (1,) for h in handles)

    def test_oversized_request_rejected(self, predictor, tiny_dataset):
        with MicroBatcher(predictor,
                          ServeConfig(max_batch_size=4)) as batcher:
            with pytest.raises(ValueError, match="exceeds max_batch_size"):
                batcher.submit(tiny_dataset.subset(np.arange(5)))


class TestBitIdentity:
    def test_micro_batched_equals_single_request(self, predictor, rows):
        """Coalesced responses match one-at-a-time padded forwards bitwise."""
        from repro.metrics.probability import sigmoid_probs

        expected = {
            i: sigmoid_probs(predictor.predict_logits(row, pad_to=16))
            for i, row in enumerate(rows)
        }
        results = {}
        with MicroBatcher(predictor,
                          ServeConfig(max_batch_size=16,
                                      max_wait_ms=20)) as batcher:
            def client(indices):
                for i in indices:
                    results[i] = batcher.predict_proba(rows[i], timeout=30)

            threads = [threading.Thread(target=client,
                                        args=(range(k, len(rows), 4),))
                       for k in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sorted(results) == list(range(len(rows)))
        for i, probs in results.items():
            np.testing.assert_array_equal(probs, expected[i])

    def test_multi_row_requests_coalesce_correctly(self, predictor,
                                                   tiny_dataset):
        """Requests of different widths fan back out to the right callers."""
        sizes = [1, 3, 2, 4, 1]
        starts = np.cumsum([0] + sizes[:-1])
        requests = [tiny_dataset.subset(np.arange(s, s + n))
                    for s, n in zip(starts, sizes)]
        with MicroBatcher(predictor,
                          ServeConfig(max_batch_size=16,
                                      max_wait_ms=20)) as batcher:
            handles = [batcher.submit(r) for r in requests]
            outputs = [h.result(timeout=30) for h in handles]
        for request, output, n in zip(requests, outputs, sizes):
            assert output.shape == (n,)
            from repro.metrics.probability import sigmoid_probs
            np.testing.assert_array_equal(
                output,
                sigmoid_probs(predictor.predict_logits(request, pad_to=16)))


class TestThreadedStress:
    def test_no_lost_or_duplicated_responses(self, predictor, rows):
        """Many producer threads; every request answered exactly once."""
        clients, per_client = 8, 25
        outcomes = [[] for _ in range(clients)]

        with MicroBatcher(predictor,
                          ServeConfig(max_batch_size=16,
                                      max_wait_ms=2)) as batcher:
            def client(k):
                for j in range(per_client):
                    row = rows[(k * per_client + j) % len(rows)]
                    outcomes[k].append(batcher.predict_proba(row, timeout=60))

            threads = [threading.Thread(target=client, args=(k,))
                       for k in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert [len(o) for o in outcomes] == [per_client] * clients
        from repro.metrics.probability import sigmoid_probs
        for k in range(clients):
            for j, probs in enumerate(outcomes[k]):
                row = rows[(k * per_client + j) % len(rows)]
                np.testing.assert_array_equal(
                    probs,
                    sigmoid_probs(predictor.predict_logits(row, pad_to=16)))


class TestErrorPropagation:
    def test_worker_failure_reaches_every_caller(self, predictor,
                                                 tiny_dataset):
        good = tiny_dataset.subset(np.asarray([0]))
        bad_values = good.values.copy()
        bad_values[0, 0, 0] = np.nan
        bad = type("B", (), dict(
            values=bad_values, mask=good.mask,
            ever_observed=good.ever_observed, deltas=good.deltas,
            __len__=lambda self: 1))()

        with MicroBatcher(predictor,
                          ServeConfig(max_batch_size=4,
                                      max_wait_ms=1)) as batcher:
            handle = batcher.submit(bad)
            with pytest.raises(ServeRequestError) as excinfo:
                handle.result(timeout=30)
            assert isinstance(excinfo.value.__cause__, ValueError)
            # The worker survives the failure and keeps serving.
            probs = batcher.predict_proba(good, timeout=30)
            assert probs.shape == (1,)


class TestMetricsIntegration:
    def test_requests_and_batches_recorded(self, predictor, rows):
        metrics = ServeMetrics("unit")
        batched = Predictor(predictor.model, metrics=metrics)
        with MicroBatcher(batched,
                          ServeConfig(max_batch_size=8, max_wait_ms=20),
                          metrics=metrics) as batcher:
            handles = [batcher.submit(r) for r in rows[:8]]
            for h in handles:
                h.result(timeout=30)
        assert metrics.request_count == 8
        assert metrics.batch_count >= 1
        assert sum(size * count for size, count
                   in metrics.batch_size_histogram().items()) == 8
        assert metrics.p95_latency >= metrics.p50_latency > 0


class TestGarbageCollection:
    """Dropping an un-stopped batcher must not leak its worker thread.

    The worker targets a detached ``_WorkerState`` (never the batcher),
    and a ``weakref.finalize`` hook aborts it once the batcher becomes
    unreachable; queued requests fail fast instead of hanging forever.
    """

    def test_dropped_batcher_stops_worker_and_fails_pending(self,
                                                            predictor,
                                                            rows):
        class SlowPredictor:
            # One row per forward, and a forward slow enough that the
            # drop below deterministically lands while requests queue.
            config = ServeConfig(max_batch_size=1, max_wait_ms=0)

            def predict_logits(self, request_rows, pad_to=None):
                time.sleep(0.5)
                return predictor.predict_logits(request_rows,
                                                pad_to=pad_to)

        batcher = MicroBatcher(SlowPredictor())
        batcher.start()
        worker = batcher._worker
        handles = [batcher.submit(rows[i]) for i in range(3)]
        del batcher
        gc.collect()
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert not any(t.name == "repro-serve-worker"
                       for t in threading.enumerate())
        # Every handle resolves promptly: served before the abort, or
        # failed by it -- never a hang.
        outcomes = []
        for handle in handles:
            try:
                handle.result(timeout=5)
                outcomes.append("served")
            except ServeRequestError as error:
                assert "dropped without stop()" in str(error.__cause__)
                outcomes.append("failed")
        assert "failed" in outcomes

    def test_stopped_batcher_detaches_its_finalizer(self, predictor, rows):
        batcher = MicroBatcher(predictor,
                               ServeConfig(max_batch_size=4, max_wait_ms=1))
        batcher.start()
        assert batcher.predict_proba(rows[0], timeout=30).shape == (1,)
        finalizer = batcher._finalizer
        batcher.stop()
        assert not finalizer.alive
        assert not any(t.name == "repro-serve-worker"
                       for t in threading.enumerate())
