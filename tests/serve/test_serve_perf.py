"""Serving throughput floor (``pytest -m serve`` perf lane).

Marked ``bench`` as well, so tier-1 skips it (timing on shared machines
is noisy) while ``pytest -m serve`` — the serving CI lane — runs it.
The test drives the micro-batcher with many concurrent clients and fails
if its throughput advantage over one-at-a-time requests drops below the
floor recorded in ``benchmarks/results/serve_floor.json``.  The floor is
deliberately conservative (~55% of the measured speedup) so it trips on
real regressions — losing batching, accidental per-request forwards —
not on scheduler jitter.
"""

import json
import threading
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

from repro.baselines import build_model
from repro.data import NUM_FEATURES, SyntheticEMRGenerator, build_dataset
from repro.serve import MicroBatcher, Predictor, ServeMetrics

pytestmark = [pytest.mark.serve, pytest.mark.bench]

FLOOR_PATH = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "results" / "serve_floor.json")


@pytest.fixture(scope="module")
def floor_spec():
    return json.loads(FLOOR_PATH.read_text())


def test_floor_file_is_well_formed(floor_spec):
    assert floor_spec["schema"] == "repro.serve/speedup-floor-v1"
    assert 1.0 < floor_spec["floor_speedup"] < floor_spec["measured_speedup"]
    load = floor_spec["load"]
    assert load["clients"] >= 16 and load["max_batch_size"] >= 16


def test_micro_batching_speedup_above_floor(floor_spec):
    load = floor_spec["load"]
    rng = np.random.default_rng(load["seed"])
    admissions = SyntheticEMRGenerator().sample_many(load["pool"], rng)
    dataset, _ = build_dataset(admissions)
    rows = [dataset.subset(np.asarray([i])) for i in range(len(dataset))]
    model = build_model(load["model"], NUM_FEATURES,
                        np.random.default_rng(load["seed"]))
    predictor = Predictor(model)

    # Baseline: one-at-a-time forwards, no batching.
    for row in rows[:8]:
        predictor.predict_logits(row)  # warm up kernels
    started = perf_counter()
    for row in rows:
        predictor.predict_logits(row)
    single_rps = len(rows) / (perf_counter() - started)

    # Micro-batched: many blocked clients feeding one worker.  A second
    # predictor over the same model routes forwards into the metrics
    # sink without polluting it with the baseline's single forwards.
    clients = load["clients"]
    requests = load["requests"]
    metrics = ServeMetrics("perf")
    batched_predictor = Predictor(model, metrics=metrics)
    with MicroBatcher(batched_predictor,
                      max_batch_size=load["max_batch_size"],
                      max_wait_ms=load["max_wait_ms"],
                      metrics=metrics) as batcher:
        started = perf_counter()

        def client(k):
            for i in range(k, requests, clients):
                batcher.predict_proba(rows[i % len(rows)], timeout=120)

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batched_rps = requests / (perf_counter() - started)

    assert metrics.request_count == requests
    assert metrics.mean_batch_size() >= 16, (
        f"coalescing collapsed: mean batch size "
        f"{metrics.mean_batch_size():.1f} < 16 "
        f"(histogram {metrics.batch_size_histogram()})")
    speedup = batched_rps / single_rps
    floor = floor_spec["floor_speedup"]
    assert speedup >= floor, (
        f"micro-batching speedup regression: {speedup:.2f}x "
        f"({batched_rps:.0f} vs {single_rps:.0f} req/s) is below the "
        f"recorded floor of {floor:.2f}x (measured: "
        f"{floor_spec['measured_speedup']:.2f}x). If this machine is "
        f"genuinely different, re-measure and update {FLOOR_PATH.name}; "
        f"see docs/SERVING.md.")
