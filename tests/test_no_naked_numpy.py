"""Lint gate: no naked ``numpy`` imports outside the backend seam.

All model, layer, op, training, and serving code must reach arrays
through :mod:`repro.nn.backend` (``from repro.nn.backend import xp``)
so the active backend stays swappable (see docs/BACKEND.md).  Only the
backend itself, the dtype/serialization planes that define the on-disk
and precision contracts, and the data/bench planes (host-side by
design) may import numpy directly.

The walk is AST-based, so aliased (``import numpy as onp``),
submodule (``import numpy.linalg``), and function-local imports are
all caught.
"""

import ast
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

# Modules allowed to import numpy directly, relative to src/repro.
# Keep this list short and deliberate — every addition widens the seam.
ALLOWED = (
    "nn/backend.py",        # the seam itself
    "nn/dtype.py",          # precision policy (numpy dtype objects)
    "nn/serialization.py",  # .npz on-disk contract
    "data/",                # host-side data plane (generation, shards)
    "bench/",               # harness-side timing/measurement code
)


def _numpy_imports(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "numpy":
                    yield node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module \
                    and node.module.split(".")[0] == "numpy":
                yield node.lineno


def test_numpy_only_imported_through_the_backend_seam():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        rel = path.relative_to(SRC_ROOT).as_posix()
        if rel.startswith(ALLOWED):
            continue
        offenders.extend(f"src/repro/{rel}:{line}"
                         for line in _numpy_imports(path))
    assert not offenders, (
        "naked numpy import(s) outside the backend seam — route through "
        "`from repro.nn.backend import xp` instead (docs/BACKEND.md):\n  "
        + "\n  ".join(offenders))


def test_allowlist_entries_exist():
    """A stale allowlist entry means the gate silently covers nothing."""
    for entry in ALLOWED:
        assert (SRC_ROOT / entry).exists(), f"stale allowlist entry: {entry}"
