"""Edge-case tests of the op layer beyond the gradcheck suite."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ops


class TestShapesAndErrors:
    def test_split_rejects_uneven(self):
        with pytest.raises(ValueError):
            ops.split(nn.Tensor(np.zeros((2, 5))), 2, axis=-1)

    def test_split_count_and_shapes(self):
        parts = ops.split(nn.Tensor(np.zeros((2, 6))), 3, axis=-1)
        assert len(parts) == 3
        assert all(p.shape == (2, 2) for p in parts)

    def test_concat_axis0(self):
        a = nn.Tensor(np.ones((2, 3)))
        b = nn.Tensor(np.zeros((1, 3)))
        out = ops.concat([a, b], axis=0)
        assert out.shape == (3, 3)
        assert out.data[-1].sum() == 0.0

    def test_stack_new_axis(self):
        a = nn.Tensor(np.ones(3))
        out = ops.stack([a, a, a], axis=0)
        assert out.shape == (3, 3)

    def test_getitem_boolean_mask_forward(self):
        x = nn.Tensor(np.arange(6.0))
        mask = np.array([True, False, True, False, True, False])
        assert np.array_equal(x[mask].data, [0.0, 2.0, 4.0])

    def test_embedding_lookup_duplicate_indices_accumulate(self):
        table = nn.Tensor(np.zeros((3, 2)), requires_grad=True)
        idx = np.array([1, 1, 1])
        out = ops.embedding_lookup(table, idx)
        out.sum().backward()
        assert np.allclose(table.grad[1], 3.0)
        assert np.allclose(table.grad[0], 0.0)


class TestNumericalStability:
    def test_softmax_extreme_logits(self):
        x = nn.Tensor(np.array([[1000.0, -1000.0, 0.0]]))
        out = ops.softmax(x, axis=-1).data
        assert np.isfinite(out).all()
        assert np.isclose(out.sum(), 1.0)
        assert out[0, 0] > 0.999

    def test_sigmoid_extreme_values(self):
        x = nn.Tensor(np.array([500.0, -500.0]))
        out = ops.sigmoid(x).data
        assert np.isfinite(out).all()
        assert out[0] > 0.999 and out[1] < 0.001

    def test_log_softmax_extreme(self):
        x = nn.Tensor(np.array([[800.0, 0.0]]))
        out = ops.log_softmax(x, axis=-1).data
        assert np.isfinite(out).all()

    def test_max_gradient_splits_ties(self):
        x = nn.Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        ops.max(x).backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])


class TestWhere:
    def test_forward_select(self):
        cond = np.array([True, False])
        out = ops.where(cond, nn.Tensor([1.0, 1.0]), nn.Tensor([9.0, 9.0]))
        assert np.array_equal(out.data, [1.0, 9.0])

    def test_gradient_routes_by_condition(self):
        cond = np.array([True, False])
        a = nn.Tensor([1.0, 1.0], requires_grad=True)
        b = nn.Tensor([9.0, 9.0], requires_grad=True)
        ops.where(cond, a, b).sum().backward()
        assert np.array_equal(a.grad, [1.0, 0.0])
        assert np.array_equal(b.grad, [0.0, 1.0])

    def test_broadcast_condition(self):
        cond = np.array([[True], [False]])
        a = nn.Tensor(np.ones((2, 3)), requires_grad=True)
        b = nn.Tensor(np.zeros((2, 3)))
        out = ops.where(np.broadcast_to(cond, (2, 3)), a, b)
        assert out.data.sum() == 3.0


class TestDropoutMask:
    def test_zero_rate_identity(self):
        x = nn.Tensor(np.ones(10))
        assert ops.dropout_mask(x, 0.0, np.random.default_rng(0)) is x

    def test_gradient_matches_mask(self):
        rng = np.random.default_rng(1)
        x = nn.Tensor(np.ones(1000), requires_grad=True)
        out = ops.dropout_mask(x, 0.5, rng)
        out.sum().backward()
        # Gradient is exactly the applied mask (inverted dropout scale).
        assert np.array_equal(x.grad, out.data)
