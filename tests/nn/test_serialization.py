"""Tests of weight save/load round trips."""

import numpy as np

from repro import nn
from repro.nn.layers import Dense, GRU
from repro.nn.module import Module


class SmallModel(Module):
    def __init__(self, rng):
        super().__init__()
        self.encoder = GRU(3, 4, rng, return_sequences=False)
        self.head = Dense(4, 1, rng)

    def forward(self, x):
        return self.head(self.encoder(x))


def test_round_trip_restores_outputs(tmp_path, rng):
    model = SmallModel(np.random.default_rng(1))
    other = SmallModel(np.random.default_rng(2))
    x = nn.Tensor(rng.normal(size=(2, 5, 3)))
    assert not np.allclose(model(x).data, other(x).data)

    path = tmp_path / "weights.npz"
    nn.save_weights(model, path)
    nn.load_weights(other, path)
    assert np.allclose(model(x).data, other(x).data)


def test_archive_contains_all_parameters(tmp_path):
    model = SmallModel(np.random.default_rng(0))
    path = tmp_path / "weights.npz"
    nn.save_weights(model, path)
    with np.load(path) as archive:
        assert set(archive.files) == set(model.state_dict())
