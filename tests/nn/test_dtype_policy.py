"""The repo-wide precision policy (repro.nn.dtype) and the gradient
memory plane it enables.

Covers the policy surface (default/set/autocast/env override), dtype
preservation through forward and backward under float32 — including the
numpy NEP-50 promotion traps (python scalars are weak, numpy scalars
are strong) that silently widen float32 back to float64 — plus the
owned-gradient accumulation semantics and ``backward(free_graph=...)``.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, ops
from repro.nn.dtype import (autocast, get_default_dtype, resolve_dtype,
                            set_default_dtype)
from repro.nn.gradcheck import gradcheck


class TestPolicySurface:
    def test_default_is_float32(self):
        # The engine's compute plane: float32 unless REPRO_DTYPE says
        # otherwise (this suite runs without the override).
        if "REPRO_DTYPE" not in os.environ:
            assert get_default_dtype() == np.float32

    def test_set_returns_previous_and_round_trips(self):
        previous = set_default_dtype(np.float64)
        try:
            assert get_default_dtype() == np.float64
        finally:
            set_default_dtype(previous)
        assert get_default_dtype() == previous

    def test_rejects_non_float_dtypes(self):
        for bad in (np.int64, np.float16, "int32", None):
            with pytest.raises((TypeError, ValueError)):
                set_default_dtype(bad)

    def test_autocast_scopes_and_restores(self):
        before = get_default_dtype()
        with autocast(np.float64):
            assert get_default_dtype() == np.float64
            with autocast(np.float32):
                assert get_default_dtype() == np.float32
            assert get_default_dtype() == np.float64
        assert get_default_dtype() == before

    def test_autocast_restores_on_exception(self):
        before = get_default_dtype()
        with pytest.raises(RuntimeError):
            with autocast(np.float64):
                raise RuntimeError("boom")
        assert get_default_dtype() == before

    def test_resolve_dtype_accepts_names_and_none(self):
        assert resolve_dtype("float64") == np.float64
        assert resolve_dtype(np.float32) == np.float32
        assert resolve_dtype(None) == get_default_dtype()

    def test_env_override_sets_initial_default(self):
        code = ("import repro.nn as nn, numpy as np; "
                "assert nn.get_default_dtype() == np.float64")
        env = dict(os.environ, REPRO_DTYPE="float64",
                   PYTHONPATH="src")
        subprocess.run([sys.executable, "-c", code], check=True, env=env,
                       cwd=os.path.dirname(os.path.dirname(
                           os.path.dirname(os.path.abspath(__file__)))))


class TestDtypePreservation:
    """Every op keeps float32 float32 — forward data and gradients."""

    @pytest.fixture(autouse=True)
    def float32_policy(self):
        with autocast(np.float32):
            yield

    def _assert_float32_through(self, build, *arrays):
        tensors = [Tensor(a, requires_grad=True) for a in arrays]
        out = build(*tensors)
        assert out.dtype == np.float32, "forward widened"
        ops.sum(out).backward()
        for t in tensors:
            assert t.grad.dtype == np.float32, "gradient widened"

    def test_elementwise_chain_stays_float32(self):
        rng = np.random.default_rng(0)
        self._assert_float32_through(
            lambda a, b: ops.tanh(ops.mul(ops.add(a, b), b)),
            rng.normal(size=(3, 4)), rng.normal(size=(3, 4)))

    # NEP-50 traps: each of these ops internally mixes python/numpy
    # scalars with float32 arrays in a way that numpy >= 2 would widen
    # to float64 if the implementation were careless.
    def test_mean_over_axis(self):
        self._assert_float32_through(
            lambda a: ops.mean(a, axis=0),
            np.random.default_rng(1).normal(size=(4, 3)))

    def test_maximum_with_ties(self):
        a = np.array([[1.0, 2.0, 3.0]])
        b = np.array([[1.0, 5.0, 0.0]])  # tie in column 0
        self._assert_float32_through(lambda x, y: ops.maximum(x, y), a, b)

    def test_leaky_relu(self):
        self._assert_float32_through(
            lambda a: ops.leaky_relu(a, negative_slope=0.01),
            np.random.default_rng(2).normal(size=(5,)))

    def test_max_over_axis(self):
        self._assert_float32_through(
            lambda a: ops.max(a, axis=-1),
            np.random.default_rng(3).normal(size=(2, 6)))

    def test_dropout_mask(self):
        t = Tensor(np.ones((8, 8)), requires_grad=True)
        out = ops.dropout_mask(t, 0.5, np.random.default_rng(4))
        assert out.dtype == np.float32
        ops.sum(out).backward()
        assert t.grad.dtype == np.float32

    def test_softmax_cross_entropy(self):
        self._assert_float32_through(
            lambda a: ops.softmax_cross_entropy(a, np.array([0, 2])),
            np.random.default_rng(5).normal(size=(2, 4)))

    def test_gru_step(self):
        rng = np.random.default_rng(6)
        self._assert_float32_through(
            ops.gru_step,
            rng.normal(size=(2, 3)), rng.normal(size=(2, 4)),
            rng.normal(size=(3, 12)), rng.normal(size=(4, 12)),
            rng.normal(size=12), rng.normal(size=12))

    def test_losses_bce_with_logits(self):
        from repro.nn.losses import bce_with_logits
        logits = Tensor(np.zeros(6), requires_grad=True)
        loss = bce_with_logits(logits, np.array([0., 1., 0., 1., 1., 0.]),
                               pos_weight=2.0)
        assert loss.dtype == np.float32
        loss.backward()
        assert logits.grad.dtype == np.float32

    def test_init_draws_cast_but_rng_stream_is_policy_invariant(self):
        from repro.nn import init
        w32 = init.glorot_uniform((4, 4), np.random.default_rng(7))
        assert w32.dtype == np.float32
        with autocast(np.float64):
            w64 = init.glorot_uniform((4, 4), np.random.default_rng(7))
        assert w64.dtype == np.float64
        # Same draws: the float32 weights are the float64 ones, cast.
        np.testing.assert_array_equal(w32, w64.astype(np.float32))

    def test_optimizer_moments_follow_parameter_dtype(self):
        param = nn.Parameter(np.ones((3, 3)))
        assert param.data.dtype == np.float32
        optimizer = nn.Adam([param], lr=0.1)
        param.grad = np.ones((3, 3), dtype=np.float32)
        optimizer.step()
        for slot in optimizer._m + optimizer._v:
            assert slot.dtype == np.float32
        assert param.data.dtype == np.float32


class TestGradcheckStaysFloat64:
    def test_gradcheck_green_under_float32_policy(self):
        with autocast(np.float32):
            gradcheck(lambda a: ops.sum(ops.tanh(a)),
                      np.random.default_rng(0).normal(size=(3, 3)))

    def test_check_module_restores_float32_parameters(self):
        from repro.nn.layers import GRUCell
        with autocast(np.float32):
            cell = GRUCell(3, 3, np.random.default_rng(1))
            x = np.random.default_rng(2).normal(size=(4, 3))
            h = np.zeros((4, 3))
            nn.check_module(
                cell, lambda m: ops.sum(ops.mul(m(Tensor(x), Tensor(h)),
                                                m(Tensor(x), Tensor(h)))))
            for _, param in cell.named_parameters():
                assert param.data.dtype == np.float32


class TestOwnedAccumulation:
    """Gradient buffers donated by op closures must never alias a buffer
    another consumer still reads (the diamond-graph hazard)."""

    def test_diamond_graph_gradients_are_correct(self):
        # x feeds two branches that rejoin; both branches accumulate
        # into x, so the first donated buffer must not be corrupted by
        # the second branch's backward.
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        y = ops.add(ops.mul(x, x), ops.exp(x))  # d/dx = 2x + e^x
        ops.sum(y).backward()
        expected = 2 * x.data + np.exp(x.data)
        np.testing.assert_allclose(x.grad, expected, rtol=1e-6)

    def test_shared_input_through_pass_through_ops(self):
        # reshape/transpose hand their incoming grad through as a view;
        # accumulating that view as "owned" would corrupt the sibling.
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a = ops.reshape(x, (3, 2))
        b = ops.transpose(x)
        loss = ops.add(ops.sum(ops.mul(a, a)), ops.sum(b))
        loss.backward()
        np.testing.assert_allclose(x.grad, 2 * x.data + 1.0, rtol=1e-6)

    def test_second_backward_after_free_graph_is_inert(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = ops.sum(ops.mul(x, x))
        loss.backward()  # free_graph=True default releases closures
        first = x.grad.copy()
        loss.backward()  # graph gone: must not double-accumulate
        np.testing.assert_array_equal(x.grad, first)

    def test_free_graph_false_allows_second_backward(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = ops.sum(ops.mul(x, x))
        loss.backward(free_graph=False)
        loss.backward(free_graph=False)
        # Two accumulations: d/dx sum(x*x) = 2x, twice.
        np.testing.assert_allclose(x.grad, 4 * np.ones(3), rtol=1e-6)

    def test_backward_frees_interior_grads(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mid = ops.tanh(x)
        ops.sum(mid).backward()
        assert mid.grad is None          # interior grads released
        assert x.grad is not None        # leaf grads kept


class TestModuleCasting:
    def test_module_to_casts_parameters_and_grads(self):
        with autocast(np.float32):
            linear = _tiny_module()
        for _, p in linear.named_parameters():
            p.grad = np.zeros_like(p.data)
        linear.to(np.float64)
        for _, p in linear.named_parameters():
            assert p.data.dtype == np.float64
            assert p.grad.dtype == np.float64
        linear.to(np.float32)
        for _, p in linear.named_parameters():
            assert p.data.dtype == np.float32


def _tiny_module():
    from repro.nn.layers import Dense
    return Dense(3, 2, np.random.default_rng(0))
