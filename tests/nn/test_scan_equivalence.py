"""Scan-vs-step equivalence for the sequence-fused recurrent kernels.

:func:`repro.nn.ops.gru_scan` / :func:`repro.nn.ops.lstm_scan` replay an
entire sequence as one graph node.  They are not bit-identical to the
step-unrolled paths — the one-big-GEMM input projection reassociates
float ops — so this suite pins them together by tolerance instead:
forward values and every gradient (input, initial state, parameters)
within 1e-10 of the per-step path under float64 and 1e-4 under float32,
across batch 1, non-contiguous inputs, the T=1 edge case, and ragged
lengths with frozen-row masking.  Mirrors the PR 2 fused-equivalence
pattern (tests/nn/test_fused_equivalence.py).
"""

import numpy as np
import pytest

from repro.baselines import GRUD, StageNet
from repro.nn import Tensor, ops
from repro.nn.dtype import autocast
from repro.nn.gradcheck import gradcheck
from repro.nn.layers import GRU, LSTM
from repro.nn.tensor import no_grad

_TOLS = {np.dtype(np.float64): 1e-10, np.dtype(np.float32): 1e-4}


@pytest.fixture(autouse=True, params=[np.float64, np.float32],
                ids=["float64", "float32"])
def dtype_policy(request):
    with autocast(request.param):
        yield np.dtype(request.param)


@pytest.fixture
def TOL(dtype_policy):
    return _TOLS[dtype_policy]


def _max_diff(a, b):
    return float(np.abs(np.asarray(a) - np.asarray(b)).max())


def _run_layer(layer, x, lengths=None):
    """Forward + backward of sum(out^2); returns (out, grads by name)."""
    layer.zero_grad()
    xt = Tensor(x, requires_grad=True)
    out = layer(xt, lengths=lengths)
    (out * out).sum().backward()
    grads = {"x": xt.grad.copy()}
    grads.update({name: p.grad.copy()
                  for name, p in layer.named_parameters()})
    return out.data.copy(), grads


def _assert_paths_agree(layer, x, tol, lengths=None):
    layer.fused_scan = True
    out_scan, grads_scan = _run_layer(layer, x, lengths)
    layer.fused_scan = False
    out_step, grads_step = _run_layer(layer, x, lengths)
    assert _max_diff(out_scan, out_step) < tol
    for name in grads_scan:
        assert _max_diff(grads_scan[name], grads_step[name]) < tol, name


class TestGRUScanEquivalence:
    @pytest.mark.parametrize("batch,steps", [(1, 6), (3, 6), (4, 1)])
    def test_matches_step_path(self, batch, steps, TOL):
        rng = np.random.default_rng(batch * 10 + steps)
        layer = GRU(5, 4, np.random.default_rng(1))
        x = rng.normal(size=(batch, steps, 5))
        _assert_paths_agree(layer, x, TOL)

    @pytest.mark.parametrize("return_sequences", [True, False])
    def test_ragged_lengths(self, return_sequences, TOL):
        rng = np.random.default_rng(7)
        layer = GRU(3, 4, np.random.default_rng(2),
                    return_sequences=return_sequences)
        x = rng.normal(size=(4, 6, 3))
        _assert_paths_agree(layer, x, TOL, lengths=np.array([1, 6, 3, 4]))

    def test_non_contiguous_input(self, TOL):
        rng = np.random.default_rng(3)
        layer = GRU(5, 4, np.random.default_rng(3))
        x = rng.normal(size=(2, 12, 5))[:, ::2]     # stride-2 time view
        assert not x.flags["C_CONTIGUOUS"]
        _assert_paths_agree(layer, x, TOL)

    def test_batch_one_with_length(self, TOL):
        rng = np.random.default_rng(4)
        layer = GRU(3, 2, np.random.default_rng(4))
        x = rng.normal(size=(1, 5, 3))
        _assert_paths_agree(layer, x, TOL, lengths=np.array([2]))

    def test_frozen_rows_repeat_final_state(self):
        rng = np.random.default_rng(5)
        layer = GRU(3, 4, np.random.default_rng(5))
        x = rng.normal(size=(2, 6, 3))
        lengths = np.array([2, 5])
        out = layer(Tensor(x), lengths=lengths).data
        for row, length in enumerate(lengths):
            tail = out[row, length:]
            np.testing.assert_array_equal(
                tail, np.broadcast_to(out[row, length - 1], tail.shape))

    def test_padded_timesteps_get_zero_input_grad(self):
        rng = np.random.default_rng(6)
        layer = GRU(3, 4, np.random.default_rng(6))
        x = rng.normal(size=(2, 6, 3))
        lengths = np.array([2, 6])
        _, grads = _run_layer(layer, x, lengths)
        assert np.all(grads["x"][0, 2:] == 0.0)
        assert np.any(grads["x"][0, :2] != 0.0)
        assert np.any(grads["x"][1, 5:] != 0.0)

    def test_no_grad_path_matches_grad_path(self):
        """The lean inference forward (no cached stacks) computes the
        same floats as the training forward."""
        rng = np.random.default_rng(8)
        layer = GRU(3, 4, np.random.default_rng(8))
        x = rng.normal(size=(2, 5, 3))
        with no_grad():
            lean = layer(Tensor(x)).data.copy()
        full = layer(Tensor(x, requires_grad=True)).data
        np.testing.assert_array_equal(lean, full)

    def test_zero_length_row_keeps_initial_state(self):
        rng = np.random.default_rng(9)
        layer = GRU(3, 4, np.random.default_rng(9),
                    return_sequences=False)
        x = rng.normal(size=(2, 4, 3))
        out = layer(Tensor(x), lengths=np.array([0, 4])).data
        np.testing.assert_array_equal(out[0], np.zeros(4))
        assert np.any(out[1] != 0.0)


class TestLSTMScanEquivalence:
    @pytest.mark.parametrize("batch,steps", [(1, 6), (3, 6), (4, 1)])
    def test_matches_step_path(self, batch, steps, TOL):
        rng = np.random.default_rng(batch * 10 + steps + 50)
        layer = LSTM(5, 4, np.random.default_rng(1))
        x = rng.normal(size=(batch, steps, 5))
        _assert_paths_agree(layer, x, TOL)

    @pytest.mark.parametrize("return_sequences", [True, False])
    def test_ragged_lengths(self, return_sequences, TOL):
        rng = np.random.default_rng(17)
        layer = LSTM(3, 4, np.random.default_rng(2),
                     return_sequences=return_sequences)
        x = rng.normal(size=(4, 6, 3))
        _assert_paths_agree(layer, x, TOL, lengths=np.array([3, 6, 1, 5]))

    def test_non_contiguous_input(self, TOL):
        rng = np.random.default_rng(13)
        layer = LSTM(5, 4, np.random.default_rng(3))
        x = rng.normal(size=(2, 12, 5))[:, ::2]
        assert not x.flags["C_CONTIGUOUS"]
        _assert_paths_agree(layer, x, TOL)


class _Batch:
    """Minimal stand-in for the EMRDataset slice forward_batch consumes."""

    def __init__(self, rng, batch, steps, channels):
        self.values = rng.normal(size=(batch, steps, channels))
        self.mask = (rng.random((batch, steps, channels)) < 0.6
                     ).astype(np.float64)
        self.deltas = np.abs(rng.normal(size=(batch, steps, channels))) + 0.5


def _run_model(model, batch):
    """Forward + backward of sum(logits^2); returns (logits, param grads).

    A parameter the path never touched (e.g. the T=1 stage gate, whose
    recalibrated cell is never read again on the step path) reports its
    gradient as zeros — the scan paths accumulate explicit zeros there.
    """
    model.zero_grad()
    logits = model.forward_batch(batch)
    (logits * logits).sum().backward()
    return logits.data.copy(), {
        name: (np.zeros_like(p.data) if p.grad is None else p.grad.copy())
        for name, p in model.named_parameters()}


def _assert_model_paths_agree(model, batch, tol):
    model.fused_scan = True
    out_scan, grads_scan = _run_model(model, batch)
    model.fused_scan = False
    out_step, grads_step = _run_model(model, batch)
    assert _max_diff(out_scan, out_step) < tol
    assert grads_scan.keys() == grads_step.keys()
    for name in grads_scan:
        assert _max_diff(grads_scan[name], grads_step[name]) < tol, name


class TestGRUDScanEquivalence:
    """The decay-augmented scan against GRU-D's step-unrolled reference:
    forward logits and the gradient of *every* parameter (decay rates,
    decay projection, GRU kernels, head) within tolerance."""

    @pytest.mark.parametrize("batch,steps", [(1, 6), (3, 6), (4, 1)])
    def test_matches_reference_path(self, batch, steps, TOL):
        rng = np.random.default_rng(batch * 10 + steps)
        model = GRUD(3, np.random.default_rng(1), hidden_size=4)
        _assert_model_paths_agree(model, _Batch(rng, batch, steps, 3), TOL)

    def test_all_observed_and_none_observed_masks(self, TOL):
        rng = np.random.default_rng(21)
        model = GRUD(3, np.random.default_rng(2), hidden_size=4)
        batch = _Batch(rng, 2, 5, 3)
        for fill in (1.0, 0.0):      # decay path fully off / fully on
            batch.mask = np.full_like(batch.mask, fill)
            _assert_model_paths_agree(model, batch, TOL)

    def test_no_grad_path_matches_grad_path(self):
        rng = np.random.default_rng(22)
        model = GRUD(3, np.random.default_rng(3), hidden_size=4)
        batch = _Batch(rng, 2, 5, 3)
        model.fused_scan = True
        with no_grad():
            lean = model.predict_logits(batch)
        full = model.forward_batch(batch).data
        np.testing.assert_array_equal(lean, full)


class TestStageNetScanEquivalence:
    """The stage-aware scan against StageNet's step-unrolled reference,
    including the stage-gate parameters and the conv/attention head fed
    by the scanned trajectory."""

    @pytest.mark.parametrize("batch,steps", [(1, 6), (3, 6), (4, 1)])
    def test_matches_reference_path(self, batch, steps, TOL):
        rng = np.random.default_rng(batch * 10 + steps + 100)
        model = StageNet(3, np.random.default_rng(1), hidden_size=6,
                         conv_channels=4, kernel_size=3)
        _assert_model_paths_agree(model, _Batch(rng, batch, steps, 3), TOL)


class TestScanOpValidation:
    def test_gru_scan_rejects_2d_input(self):
        with pytest.raises(ValueError, match="gru_scan expects"):
            ops.gru_scan(np.zeros((2, 5)), np.zeros((2, 4)),
                         np.zeros((5, 12)), np.zeros((4, 12)),
                         np.zeros(12), np.zeros(12))

    def test_gru_scan_rejects_mismatched_weights(self):
        with pytest.raises(ValueError, match="gru_scan shapes"):
            ops.gru_scan(np.zeros((2, 3, 5)), np.zeros((2, 4)),
                         np.zeros((5, 9)), np.zeros((4, 12)),
                         np.zeros(12), np.zeros(12))

    def test_lstm_scan_rejects_mismatched_state(self):
        with pytest.raises(ValueError, match="lstm_scan shapes"):
            ops.lstm_scan(np.zeros((2, 3, 5)), np.zeros((2, 4)),
                          np.zeros((3, 4)), np.zeros((5, 16)),
                          np.zeros((4, 16)), np.zeros(16))

    @pytest.mark.parametrize("bad", [np.array([1, 2, 3]),   # wrong shape
                                     np.array([1, 7]),      # > steps
                                     np.array([-1, 2])])    # negative
    def test_rejects_bad_lengths(self, bad):
        with pytest.raises(ValueError, match="lengths"):
            ops.gru_scan(np.zeros((2, 5, 3)), np.zeros((2, 4)),
                         np.zeros((3, 12)), np.zeros((4, 12)),
                         np.zeros(12), np.zeros(12), lengths=bad)

    def test_grud_scan_rejects_mismatched_mask(self):
        with pytest.raises(ValueError, match="grud_scan mask"):
            ops.grud_scan(np.zeros((2, 3, 5)), np.zeros((2, 4, 5)),
                          np.zeros((2, 3, 5)), np.zeros((2, 4)),
                          np.zeros(5), np.zeros((5, 4)), np.zeros(4),
                          np.zeros((10, 12)), np.zeros((4, 12)),
                          np.zeros(12), np.zeros(12))

    def test_stagenet_scan_rejects_mismatched_stage_gate(self):
        with pytest.raises(ValueError, match="stagenet_scan shapes"):
            ops.stagenet_scan(np.zeros((2, 3, 5)), np.zeros((2, 4)),
                              np.zeros((2, 4)), np.zeros((5, 16)),
                              np.zeros((4, 16)), np.zeros(16),
                              np.zeros((8, 1)), np.zeros(1))


class TestScanRaggedGradients:
    """Frozen-row semantics of the new scans at the op level: rows past
    their length repeat the final state and contribute zero gradient to
    the padded input timesteps."""

    def test_grud_scan_frozen_rows_and_padded_grads(self):
        rng = np.random.default_rng(31)
        values = Tensor(rng.normal(size=(2, 5, 3)), requires_grad=True)
        deltas = Tensor(np.abs(rng.normal(size=(2, 5, 3))) + 0.5,
                        requires_grad=True)
        mask = (rng.random((2, 5, 3)) < 0.6).astype(np.float64)
        out = ops.grud_scan(
            values, mask, deltas, Tensor(np.zeros((2, 2))),
            Tensor(np.full(3, 0.1)), Tensor(rng.normal(size=(3, 2)) * 0.5),
            Tensor(np.zeros(2)), Tensor(rng.normal(size=(6, 6)) * 0.5),
            Tensor(rng.normal(size=(2, 6)) * 0.5), Tensor(np.zeros(6)),
            Tensor(np.zeros(6)), lengths=np.array([2, 5]),
            return_sequences=True)
        (out * out).sum().backward()
        np.testing.assert_array_equal(
            out.data[0, 2:], np.broadcast_to(out.data[0, 1], (3, 2)))
        assert np.all(values.grad[0, 2:] == 0.0)
        assert np.all(deltas.grad[0, 2:] == 0.0)
        assert np.any(values.grad[0, :2] != 0.0)
        assert np.any(values.grad[1, 4:] != 0.0)

    def test_stagenet_scan_frozen_rows_and_padded_grads(self):
        rng = np.random.default_rng(32)
        x = Tensor(rng.normal(size=(2, 5, 3)), requires_grad=True)
        out = ops.stagenet_scan(
            x, Tensor(np.zeros((2, 2))), Tensor(np.zeros((2, 2))),
            Tensor(rng.normal(size=(3, 8)) * 0.5),
            Tensor(rng.normal(size=(2, 8)) * 0.5), Tensor(np.zeros(8)),
            Tensor(rng.normal(size=(5, 1)) * 0.5), Tensor(np.zeros(1)),
            lengths=np.array([2, 5]))
        (out * out).sum().backward()
        np.testing.assert_array_equal(
            out.data[0, 2:], np.broadcast_to(out.data[0, 1], (3, 2)))
        assert np.all(x.grad[0, 2:] == 0.0)
        assert np.any(x.grad[0, :2] != 0.0)
        assert np.any(x.grad[1, 4:] != 0.0)


class TestScanRegistryCoverage:
    """Satellite: the scan ops are first-class registry citizens, so the
    registry-driven gradcheck sweep covers them automatically (and the
    gradcheck itself forces float64 per the PR 5 contract even when
    entered from the float32 lane)."""

    @pytest.mark.parametrize("name", ["gru_scan", "lstm_scan",
                                      "grud_scan", "stagenet_scan"])
    def test_registered_with_sample_factory(self, name):
        registry = ops.registered_ops()
        assert name in registry
        assert registry[name].sample_factory is not None
        samples = ops.sample_inputs(name, np.random.default_rng(0))
        # Ragged-length and final-state-only scenarios must be in the
        # sweep, not just the dense default.
        assert len(samples) >= 2, f"{name} needs masked scan scenarios"
        for sample in samples:
            gradcheck(sample.build, *sample.arrays)
