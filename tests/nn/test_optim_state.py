"""Optimizer and state-tree serialization round trips."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import (flatten_state, load_state, save_state,
                                    unflatten_state)


def _params(shapes=((3, 2), (4,))):
    return [nn.Parameter(np.random.default_rng(i).normal(size=s))
            for i, s in enumerate(shapes)]


def _take_steps(optimizer, params, n=3):
    rng = np.random.default_rng(42)
    for _ in range(n):
        for p in params:
            p.grad = rng.normal(size=p.data.shape)
        optimizer.step()


class TestOptimizerStateDict:
    @pytest.mark.parametrize("factory", [
        lambda ps: nn.Adam(ps, lr=1e-3),
        lambda ps: nn.SGD(ps, lr=0.01, momentum=0.9),
        lambda ps: nn.RMSProp(ps, lr=1e-3),
    ])
    def test_round_trip_produces_identical_updates(self, factory):
        params_a = _params()
        opt_a = factory(params_a)
        _take_steps(opt_a, params_a)

        # Clone into a fresh optimizer over identical parameter values.
        params_b = [nn.Parameter(p.data.copy()) for p in params_a]
        opt_b = factory(params_b)
        opt_b.load_state_dict(opt_a.state_dict())

        # One more identical step must produce identical parameters.
        rng_a, rng_b = (np.random.default_rng(7) for _ in range(2))
        for p, r in ((params_a, rng_a), (params_b, rng_b)):
            for param in p:
                param.grad = r.normal(size=param.data.shape)
        opt_a.step()
        opt_b.step()
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_adam_state_contents(self):
        params = _params()
        opt = nn.Adam(params, lr=1e-3)
        _take_steps(opt, params, n=2)
        state = opt.state_dict()
        assert state["step_count"] == 2
        assert len(state["m"]) == len(params)
        assert state["m"][0].shape == params[0].data.shape

    def test_shape_mismatch_rejected(self):
        opt = nn.Adam(_params(), lr=1e-3)
        state = opt.state_dict()
        state["m"][0] = np.zeros((9, 9))
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(state)

    def test_slot_count_mismatch_rejected(self):
        opt = nn.Adam(_params(), lr=1e-3)
        state = opt.state_dict()
        state["v"] = state["v"][:1]
        with pytest.raises(ValueError, match="slots"):
            opt.load_state_dict(state)

    def test_lr_is_restored(self):
        opt = nn.Adam(_params(), lr=1e-3)
        state = opt.state_dict()
        opt.lr = 0.5
        opt.load_state_dict(state)
        assert opt.lr == 1e-3


class TestStateTreeSerialization:
    def test_flatten_unflatten_inverse(self):
        tree = {"lr": 0.1, "step_count": 5,
                "m": [np.arange(3.0), np.eye(2)],
                "nested": {"a": [1.0, 2.0]}}
        flat = flatten_state(tree)
        assert set(flat) == {"lr", "step_count", "m.0", "m.1",
                             "nested.a.0", "nested.a.1"}
        back = unflatten_state(flat)
        assert back["lr"] == 0.1 and back["step_count"] == 5
        np.testing.assert_array_equal(back["m"][1], np.eye(2))
        assert back["nested"]["a"] == [1.0, 2.0]

    def test_npz_round_trip(self, tmp_path):
        tree = {"lr": 1e-3, "m": [np.arange(4.0).reshape(2, 2)]}
        path = tmp_path / "state.npz"
        save_state(path, tree)
        back = load_state(path)
        assert back["lr"] == 1e-3
        np.testing.assert_array_equal(back["m"][0],
                                      np.arange(4.0).reshape(2, 2))

    def test_ambiguous_keys_rejected(self):
        with pytest.raises(ValueError, match="ambiguous"):
            flatten_state({"a.b": 1.0})
        with pytest.raises(ValueError, match="ambiguous"):
            flatten_state({"01": 1.0})
