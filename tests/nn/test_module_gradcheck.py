"""Module-level gradchecks: whole layers and whole models.

``check_module`` perturbs every parameter of a module and compares
against the analytic gradients of one backward pass — so the recurrent
cells, attention blocks, normalization, ELDA-Net, and every registered
baseline are verified end-to-end, not just op by op.
"""

import types

import numpy as np
import pytest

from repro import nn
from repro.baselines import BASELINE_NAMES, build_model
from repro.core import ELDANet
from repro.data import NUM_FEATURES
from repro.nn import ops
from repro.nn.gradcheck import GradcheckFailure, check_module
from repro.nn.layers import (GRU, LSTM, AdditiveAttention, BiGRU, Dense,
                             GeneralAttention, GRUCell, LayerNorm, LSTMCell,
                             MultiHeadSelfAttention)
from repro.nn.losses import bce_with_logits

RNG = np.random.default_rng(42)


def _sqsum(t):
    return ops.sum(ops.mul(t, t))


# ----------------------------------------------------------------------
# Layers
# ----------------------------------------------------------------------

class TestLayerGradcheck:
    def test_dense(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 4, rng, activation="tanh")
        x = nn.Tensor(rng.normal(size=(2, 3)))
        check_module(layer, lambda m: _sqsum(m(x)))

    def test_gru_cell(self):
        rng = np.random.default_rng(1)
        cell = GRUCell(3, 4, rng)
        x = nn.Tensor(rng.normal(size=(2, 3)))
        h = nn.Tensor(rng.normal(size=(2, 4)))
        check_module(cell, lambda m: _sqsum(m(x, h)))

    def test_gru_sequence(self):
        rng = np.random.default_rng(2)
        gru = GRU(3, 4, rng)
        x = nn.Tensor(rng.normal(size=(2, 5, 3)))
        check_module(gru, lambda m: _sqsum(m(x)))

    def test_lstm_cell(self):
        rng = np.random.default_rng(3)
        cell = LSTMCell(3, 4, rng)
        x = nn.Tensor(rng.normal(size=(2, 3)))
        state = (nn.Tensor(rng.normal(size=(2, 4))),
                 nn.Tensor(rng.normal(size=(2, 4))))
        check_module(cell, lambda m: _sqsum(m(x, state)[0]))

    def test_lstm_sequence(self):
        rng = np.random.default_rng(4)
        lstm = LSTM(3, 4, rng, return_sequences=False)
        x = nn.Tensor(rng.normal(size=(2, 5, 3)))
        check_module(lstm, lambda m: _sqsum(m(x)))

    def test_bigru(self):
        rng = np.random.default_rng(5)
        bigru = BiGRU(3, 4, rng)
        x = nn.Tensor(rng.normal(size=(2, 4, 3)))
        check_module(bigru, lambda m: _sqsum(m(x)))

    def test_additive_attention(self):
        rng = np.random.default_rng(6)
        att = AdditiveAttention(4, 3, rng)
        q = nn.Tensor(rng.normal(size=(2, 4)))
        keys = nn.Tensor(rng.normal(size=(2, 5, 4)))
        check_module(att, lambda m: _sqsum(m(q, keys)))

    def test_general_attention(self):
        rng = np.random.default_rng(7)
        att = GeneralAttention(4, rng)
        q = nn.Tensor(rng.normal(size=(2, 4)))
        keys = nn.Tensor(rng.normal(size=(2, 5, 4)))
        check_module(att, lambda m: _sqsum(m(q, keys)))

    def test_multi_head_self_attention(self):
        rng = np.random.default_rng(8)
        att = MultiHeadSelfAttention(4, 2, rng, causal=True)
        x = nn.Tensor(rng.normal(size=(2, 5, 4)))
        check_module(att, lambda m: _sqsum(m(x)))

    def test_layer_norm(self):
        x = nn.Tensor(np.random.default_rng(9).normal(size=(3, 6)) * 2.0)
        check_module(LayerNorm(6), lambda m: _sqsum(m(x)))

    def test_parameter_masking_by_prefix(self):
        rng = np.random.default_rng(10)
        gru = GRU(3, 4, rng)
        x = nn.Tensor(rng.normal(size=(2, 3, 3)))
        report = check_module(gru, lambda m: _sqsum(m(x)),
                              params=["cell.w_ih"])
        assert [name for name, *_ in report.entries] == ["cell.w_ih"]

    def test_detects_a_broken_backward(self):
        """A module whose analytic gradient is wrong must fail the check."""
        class Broken(nn.Module):
            def __init__(self):
                super().__init__()
                self.weight = nn.Parameter(np.array([1.5, -0.5]))

            def forward(self):
                # power's backward is correct; sabotage by detaching one
                # path so the analytic gradient misses a term.
                honest = ops.mul(self.weight, self.weight)
                hidden = ops.mul(self.weight.detach(), nn.Tensor([3.0, 3.0]))
                return ops.sum(ops.add(honest, hidden))

        with pytest.raises(GradcheckFailure, match="weight"):
            check_module(Broken(), lambda m: m())


# ----------------------------------------------------------------------
# Whole models on a micro-batch
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def micro_batch(tiny_dataset):
    """Three admissions, truncated to 8 time steps, as a batch object."""
    sub = tiny_dataset.subset(np.arange(3))
    return types.SimpleNamespace(
        values=sub.values[:, :8, :],
        mask=sub.mask[:, :8, :],
        deltas=sub.deltas[:, :8, :],
        ever_observed=sub.ever_observed,
    )


MICRO_LABELS = np.array([0.0, 1.0, 1.0])


def _model_loss(batch):
    return lambda m: bce_with_logits(m.forward_batch(batch), MICRO_LABELS)


@pytest.mark.parametrize("name", BASELINE_NAMES)
def test_baseline_gradcheck(name, micro_batch):
    model = build_model(name, NUM_FEATURES, np.random.default_rng(1))
    check_module(model, _model_loss(micro_batch), max_entries=3,
                 rng=np.random.default_rng(7))


def test_elda_net_gradcheck(micro_batch):
    model = build_model("ELDA-Net", NUM_FEATURES, np.random.default_rng(1))
    check_module(model, _model_loss(micro_batch), max_entries=3,
                 rng=np.random.default_rng(7))


@pytest.mark.gradcheck
def test_elda_net_gradcheck_small_config_dense(micro_batch):
    """Denser check on a down-scaled ELDA-Net: every parameter tensor,
    more entries each."""
    rng = np.random.default_rng(11)
    model = ELDANet(NUM_FEATURES, rng, embedding_size=4, hidden_size=6,
                    compression=2)
    check_module(model, _model_loss(micro_batch), max_entries=12,
                 rng=np.random.default_rng(13))


@pytest.mark.gradcheck
def test_elda_net_multiclass_gradcheck(micro_batch):
    from repro.nn.losses import cross_entropy
    rng = np.random.default_rng(12)
    model = ELDANet(NUM_FEATURES, rng, embedding_size=4, hidden_size=6,
                    compression=2, num_classes=3)
    targets = np.array([0, 2, 1])
    check_module(
        model,
        lambda m: cross_entropy(m.forward_batch(micro_batch), targets),
        max_entries=6, rng=np.random.default_rng(13))
