"""Finite-difference gradient checks for every differentiable op.

These are the ground-truth tests of the autodiff engine: each op's
backward closure is compared against central differences on random
inputs, including broadcasting shapes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import ops
from tests.conftest import assert_gradcheck

RNG = np.random.default_rng(7)


def _rand(*shape):
    return RNG.normal(size=shape)


class TestElementwiseGrads:
    def test_add_broadcast(self):
        assert_gradcheck(lambda a, b: (a + b).sum(), _rand(3, 4), _rand(4))

    def test_sub_broadcast(self):
        assert_gradcheck(lambda a, b: (a - b).sum(), _rand(2, 1, 3), _rand(3))

    def test_mul_broadcast(self):
        assert_gradcheck(lambda a, b: (a * b).sum(), _rand(3, 4), _rand(3, 1))

    def test_div(self):
        assert_gradcheck(lambda a, b: (a / b).sum(),
                         _rand(3, 4), _rand(3, 4) + 3.0)

    def test_neg(self):
        assert_gradcheck(lambda a: (-a).sum(), _rand(5))

    def test_power(self):
        assert_gradcheck(lambda a: (a ** 3).sum(), _rand(4))

    def test_abs(self):
        assert_gradcheck(lambda a: ops.abs(a).sum(), _rand(6) + 2.0)

    def test_maximum(self):
        assert_gradcheck(lambda a, b: ops.maximum(a, b).sum(),
                         _rand(5), _rand(5))

    def test_minimum(self):
        assert_gradcheck(lambda a, b: ops.minimum(a, b).sum(),
                         _rand(5), _rand(5))

    def test_clip(self):
        assert_gradcheck(lambda a: ops.clip(a, -0.5, 0.5).sum(),
                         _rand(8) * 2.0)

    def test_where(self):
        cond = RNG.random(6) > 0.5
        assert_gradcheck(lambda a, b: ops.where(cond, a, b).sum(),
                         _rand(6), _rand(6))


class TestTranscendentalGrads:
    def test_exp(self):
        assert_gradcheck(lambda a: ops.exp(a).sum(), _rand(5))

    def test_log(self):
        assert_gradcheck(lambda a: ops.log(a).sum(), np.abs(_rand(5)) + 1.0)

    def test_sqrt(self):
        assert_gradcheck(lambda a: ops.sqrt(a).sum(), np.abs(_rand(5)) + 1.0)

    def test_tanh(self):
        assert_gradcheck(lambda a: ops.tanh(a).sum(), _rand(5))

    def test_sigmoid(self):
        assert_gradcheck(lambda a: ops.sigmoid(a).sum(), _rand(5))

    def test_relu(self):
        assert_gradcheck(lambda a: ops.relu(a).sum(), _rand(7) + 0.3)

    def test_leaky_relu(self):
        assert_gradcheck(lambda a: ops.leaky_relu(a, 0.1).sum(),
                         _rand(7) + 0.3)


class TestReductionGrads:
    def test_sum_all(self):
        assert_gradcheck(lambda a: a.sum(), _rand(3, 4))

    def test_sum_axis(self):
        assert_gradcheck(lambda a: a.sum(axis=1).sum(), _rand(3, 4))

    def test_sum_keepdims(self):
        assert_gradcheck(lambda a: (a.sum(axis=0, keepdims=True) ** 2).sum(),
                         _rand(3, 4))

    def test_sum_negative_axis(self):
        assert_gradcheck(lambda a: (a.sum(axis=-1) ** 2).sum(), _rand(2, 3))

    def test_mean_axis(self):
        assert_gradcheck(lambda a: (a.mean(axis=1) ** 2).sum(), _rand(3, 4))

    def test_mean_axis_tuple(self):
        assert_gradcheck(lambda a: (ops.mean(a, axis=(0, 2)) ** 2).sum(),
                         _rand(2, 3, 4))

    def test_max(self):
        # Keep values distinct so the subgradient is unambiguous.
        base = np.linspace(0.0, 1.0, 12).reshape(3, 4) + _rand(3, 4) * 0.01
        assert_gradcheck(lambda a: ops.max(a, axis=1).sum(), base)

    def test_min(self):
        base = np.linspace(0.0, 1.0, 12).reshape(3, 4) + _rand(3, 4) * 0.01
        assert_gradcheck(lambda a: ops.min(a, axis=0).sum(), base)

    def test_var(self):
        assert_gradcheck(lambda a: ops.var(a, axis=-1).sum(), _rand(3, 5))


class TestMatmulGrads:
    def test_2d_2d(self):
        assert_gradcheck(lambda a, b: (a @ b).sum(), _rand(3, 4), _rand(4, 2))

    def test_batched(self):
        assert_gradcheck(lambda a, b: (a @ b).sum(),
                         _rand(2, 3, 4), _rand(2, 4, 2))

    def test_broadcast_left(self):
        assert_gradcheck(lambda a, b: (a @ b).sum(),
                         _rand(2, 3, 4), _rand(4, 2))

    def test_broadcast_right(self):
        assert_gradcheck(lambda a, b: (a @ b).sum(),
                         _rand(3, 4), _rand(2, 4, 2))

    def test_vector_matrix(self):
        assert_gradcheck(lambda a, b: (a @ b).sum(), _rand(4), _rand(4, 3))

    def test_matrix_vector(self):
        assert_gradcheck(lambda a, b: (a @ b).sum(), _rand(3, 4), _rand(4))

    def test_vector_vector(self):
        assert_gradcheck(lambda a, b: a @ b, _rand(4), _rand(4))

    def test_batched_matrix_vector(self):
        assert_gradcheck(lambda a, b: (a @ b).sum(), _rand(2, 3, 4), _rand(4))

    def test_outer_last(self):
        assert_gradcheck(lambda a, b: (ops.outer_last(a, b) ** 2).sum(),
                         _rand(2, 3), _rand(2, 3))

    def test_4d_batched(self):
        assert_gradcheck(lambda a, b: (a @ b).sum(),
                         _rand(2, 2, 3, 4), _rand(2, 2, 4, 3))


class TestShapeGrads:
    def test_reshape(self):
        assert_gradcheck(lambda a: (a.reshape(6) ** 2).sum(), _rand(2, 3))

    def test_transpose_default(self):
        assert_gradcheck(lambda a: (ops.transpose(a) ** 2).sum(), _rand(2, 3))

    def test_transpose_axes(self):
        assert_gradcheck(lambda a: (ops.transpose(a, (1, 2, 0)) ** 2).sum(),
                         _rand(2, 3, 4))

    def test_swapaxes(self):
        assert_gradcheck(lambda a: (ops.swapaxes(a, 0, 2) ** 2).sum(),
                         _rand(2, 3, 4))

    def test_getitem_slice(self):
        assert_gradcheck(lambda a: (a[1:, :2] ** 2).sum(), _rand(3, 4))

    def test_getitem_negative_step(self):
        assert_gradcheck(lambda a: (a[:, ::-1] * np.arange(4.0)).sum(),
                         _rand(3, 4))

    def test_getitem_integer_array(self):
        idx = np.array([0, 2, 2])
        assert_gradcheck(lambda a: (a[idx] ** 2).sum(), _rand(3, 4))

    def test_concat(self):
        assert_gradcheck(lambda a, b: (ops.concat([a, b], axis=1) ** 2).sum(),
                         _rand(2, 3), _rand(2, 2))

    def test_stack(self):
        assert_gradcheck(lambda a, b: (ops.stack([a, b], axis=1) ** 2).sum(),
                         _rand(2, 3), _rand(2, 3))

    def test_split(self):
        assert_gradcheck(
            lambda a: sum((part ** 2).sum() * (i + 1)
                          for i, part in enumerate(ops.split(a, 3, axis=-1))),
            _rand(2, 6))

    def test_pad_last(self):
        assert_gradcheck(lambda a: (ops.pad_last(a, 1, 2) ** 2).sum(),
                         _rand(2, 3))


class TestSoftmaxGrads:
    def test_softmax(self):
        assert_gradcheck(lambda a: (ops.softmax(a, axis=-1)
                                    * np.arange(4.0)).sum(), _rand(3, 4))

    def test_softmax_axis0(self):
        assert_gradcheck(lambda a: (ops.softmax(a, axis=0) ** 2).sum(),
                         _rand(3, 4))

    def test_log_softmax(self):
        assert_gradcheck(lambda a: (ops.log_softmax(a, axis=-1)
                                    * np.arange(4.0)).sum(), _rand(2, 4))

    def test_embedding_lookup(self):
        idx = np.array([[0, 1], [2, 0]])
        assert_gradcheck(
            lambda t: (ops.embedding_lookup(t, idx) ** 2).sum(), _rand(3, 5))


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_matmul_gradcheck_random_shapes(m, k, n):
    """Property: matmul gradients match finite differences for any shape."""
    rng = np.random.default_rng(m * 100 + k * 10 + n)
    assert_gradcheck(lambda a, b: ((a @ b) ** 2).sum(),
                     rng.normal(size=(m, k)), rng.normal(size=(k, n)))


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(1, 3))
def test_softmax_rows_sum_to_one(cols, rows):
    """Property: softmax output is a distribution along the chosen axis."""
    rng = np.random.default_rng(cols * 7 + rows)
    from repro import nn
    x = nn.Tensor(rng.normal(size=(rows, cols)) * 5)
    out = ops.softmax(x, axis=-1).data
    assert np.allclose(out.sum(axis=-1), 1.0)
    assert (out >= 0).all()


class TestBackwardRegressions:
    """Regression tests for backward bugs surfaced by the registry sweep."""

    def test_maximum_splits_gradient_at_exact_ties(self):
        # Winner-take-all at a tie disagrees with central differences
        # (the subgradient must be split 0.5/0.5); this was a real bug.
        from repro import nn
        a = nn.Tensor(np.array([1.0, 2.0, -3.0]), requires_grad=True)
        b = nn.Tensor(np.array([1.0, 0.5, -3.0]), requires_grad=True)
        ops.sum(ops.maximum(a, b)).backward()
        np.testing.assert_allclose(a.grad, [0.5, 1.0, 0.5])
        np.testing.assert_allclose(b.grad, [0.5, 0.0, 0.5])

    def test_minimum_splits_gradient_at_exact_ties(self):
        from repro import nn
        a = nn.Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = nn.Tensor(np.array([1.0, 0.5]), requires_grad=True)
        ops.sum(ops.minimum(a, b)).backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.0])
        np.testing.assert_allclose(b.grad, [0.5, 1.0])

    def test_tied_maximum_matches_finite_differences(self):
        a = np.array([0.7, -1.2, 0.0])
        assert_gradcheck(lambda x, y: ops.sum(ops.maximum(x, y)),
                         a, a.copy())

    def test_power_zero_exponent_has_zero_grad_at_zero_base(self):
        # d/dx x**0 = 0 everywhere; the generic 0 * x**-1 formula emitted
        # NaN at x = 0.
        from repro import nn
        x = nn.Tensor(np.array([0.0, 2.0, -1.5]), requires_grad=True)
        ops.sum(ops.power(x, 0.0)).backward()
        np.testing.assert_allclose(x.grad, 0.0)

    def test_transpose_negative_axes_gradcheck(self):
        # The inverse permutation was computed from the raw (negative)
        # axes, scattering gradients to the wrong positions.
        assert_gradcheck(
            lambda a: ((ops.transpose(a, (0, -1, 1))
                        * np.arange(24.0).reshape(2, 4, 3)) ** 2).sum(),
            _rand(2, 3, 4))

    def test_transpose_negative_axes_roundtrip_grad(self):
        from repro import nn
        x = nn.Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        weights = np.arange(6.0).reshape(3, 2)
        ops.sum(ops.mul(ops.transpose(x, (-1, -2)),
                        nn.Tensor(weights))).backward()
        np.testing.assert_allclose(x.grad, weights.T)
