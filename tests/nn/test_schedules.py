"""Tests of learning-rate schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.nn.schedules import CosineAnnealing, ReduceOnPlateau, StepDecay


def make_optimizer(lr=0.1):
    return nn.SGD([Parameter(np.zeros(1))], lr=lr)


class TestStepDecay:
    def test_decays_at_boundaries(self):
        opt = make_optimizer(0.1)
        sched = StepDecay(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(lrs, [0.1, 0.01, 0.01, 0.001])

    def test_rejects_bad_step_size(self):
        with pytest.raises(ValueError):
            StepDecay(make_optimizer(), step_size=0)


class TestCosineAnnealing:
    def test_reaches_min_lr(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealing(opt, total_epochs=10, min_lr=0.001)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.001)

    def test_monotone_decrease(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealing(opt, total_epochs=8)
        lrs = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_horizon(self):
        opt = make_optimizer(0.1)
        sched = CosineAnnealing(opt, total_epochs=3)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            CosineAnnealing(make_optimizer(), total_epochs=0)


class TestReduceOnPlateau:
    def test_holds_while_improving(self):
        opt = make_optimizer(0.1)
        sched = ReduceOnPlateau(opt, patience=1)
        for value in (1.0, 0.9, 0.8, 0.7):
            sched.step(value)
        assert opt.lr == 0.1

    def test_reduces_after_stall(self):
        opt = make_optimizer(0.1)
        sched = ReduceOnPlateau(opt, factor=0.5, patience=1)
        sched.step(1.0)
        sched.step(1.0)   # stall 1
        sched.step(1.0)   # stall 2 > patience -> reduce
        assert np.isclose(opt.lr, 0.05)

    def test_respects_min_lr(self):
        opt = make_optimizer(1e-5)
        sched = ReduceOnPlateau(opt, factor=0.1, patience=0, min_lr=1e-6)
        sched.step(1.0)
        for _ in range(5):
            sched.step(1.0)
        assert opt.lr >= 1e-6

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            ReduceOnPlateau(make_optimizer(), factor=1.5)


def test_schedule_integrates_with_training():
    """Cosine-scheduled SGD still solves a quadratic."""
    param = Parameter(np.array([5.0]))
    opt = nn.SGD([param], lr=0.3)
    sched = CosineAnnealing(opt, total_epochs=50, min_lr=0.01)
    for _ in range(50):
        opt.zero_grad()
        (param * param).sum().backward()
        opt.step()
        sched.step()
    assert abs(param.data[0]) < 1e-3
