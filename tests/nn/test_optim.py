"""Tests of the optimizers: convergence, state, and gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def quadratic_loss(param, target):
    diff = param - nn.Tensor(target)
    return (diff * diff).sum()


def run_steps(optimizer, param, target, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param, target)
        loss.backward()
        optimizer.step()
    return quadratic_loss(param, target).item()


TARGET = np.array([1.0, -2.0, 3.0])


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        final = run_steps(nn.SGD([param], lr=0.1), param, TARGET, 200)
        assert final < 1e-6

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(3))
        heavy = Parameter(np.zeros(3))
        loss_plain = run_steps(nn.SGD([plain], lr=0.01), plain, TARGET, 50)
        loss_heavy = run_steps(nn.SGD([heavy], lr=0.01, momentum=0.9),
                               heavy, TARGET, 50)
        assert loss_heavy < loss_plain

    def test_weight_decay_shrinks_solution(self):
        param = Parameter(np.zeros(3))
        run_steps(nn.SGD([param], lr=0.1, weight_decay=1.0), param, TARGET, 300)
        assert np.all(np.abs(param.data) < np.abs(TARGET))

    def test_skips_parameters_without_grad(self):
        a, b = Parameter(np.zeros(2)), Parameter(np.ones(2))
        opt = nn.SGD([a, b], lr=0.1)
        (a * a).sum().backward()
        opt.step()
        assert np.array_equal(b.data, np.ones(2))

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        final = run_steps(nn.Adam([param], lr=0.1), param, TARGET, 300)
        assert final < 1e-4

    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step has magnitude ~lr.
        param = Parameter(np.zeros(1))
        opt = nn.Adam([param], lr=0.05)
        (param * 3.0).sum().backward()
        opt.step()
        assert np.isclose(abs(param.data[0]), 0.05, rtol=1e-3)

    def test_handles_sparse_grads_across_steps(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt = nn.Adam([a, b], lr=0.1)
        for k in range(4):
            opt.zero_grad()
            if k % 2 == 0:
                ((a - 1.0) ** 2).sum().backward()
            else:
                ((b - 1.0) ** 2).sum().backward()
            opt.step()
        assert a.data[0] > 0 and b.data[0] > 0


class TestRMSProp:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        final = run_steps(nn.RMSProp([param], lr=0.05), param, TARGET, 400)
        assert final < 1e-3


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        norm = nn.clip_grad_norm([p], max_norm=10.0)
        assert np.isclose(norm, 0.2)
        assert np.allclose(p.grad, 0.1)

    def test_clips_to_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        nn.clip_grad_norm([p], max_norm=1.0)
        assert np.isclose(np.sqrt((p.grad ** 2).sum()), 1.0)

    def test_global_norm_across_parameters(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        norm = nn.clip_grad_norm([a, b], max_norm=1.0)
        assert np.isclose(norm, 5.0)
        assert np.isclose(a.grad[0] / b.grad[0], 3.0 / 4.0)

    def test_ignores_missing_grads(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([2.0])
        assert np.isclose(nn.clip_grad_norm([a, b], 10.0), 2.0)
