"""The backend seam: registry, the ``xp`` proxy, and env selection."""

import types

import numpy
import pytest

from repro.nn import backend
from repro.nn.backend import (Backend, available_backends, get_backend,
                              register_backend, set_backend, xp)


@pytest.fixture()
def restore_numpy_backend():
    yield
    set_backend("numpy")
    backend._BACKENDS.pop("stub", None)


def _stub_backend():
    """Numpy under a marker namespace, so switches are observable."""
    namespace = types.SimpleNamespace(stub_marker=True)
    namespace.__dict__.update(
        {name: getattr(numpy, name) for name in ("add", "asarray", "dtype")})
    return Backend("stub", namespace)


class TestRegistry:
    def test_numpy_is_the_default(self):
        assert "numpy" in available_backends()
        assert get_backend().name == "numpy"

    def test_register_rejects_non_backends(self):
        with pytest.raises(TypeError, match="expected a Backend"):
            register_backend(numpy)

    def test_unknown_name_is_a_helpful_error(self):
        with pytest.raises(ValueError, match="unknown backend.*registered"):
            set_backend("tpu9000")


class TestProxy:
    def test_resolves_and_caches_from_the_active_backend(self):
        assert xp.add is numpy.add
        assert "add" in vars(xp)  # cached after first access

    def test_switch_clears_the_cache_both_ways(self, restore_numpy_backend):
        assert xp.asarray is numpy.asarray
        set_backend(_stub_backend())
        assert get_backend().name == "stub"
        assert xp.stub_marker is True
        assert xp.asarray is numpy.asarray  # stub re-exports it
        set_backend("numpy")
        with pytest.raises(AttributeError):
            xp.stub_marker

    def test_missing_attribute_propagates(self):
        with pytest.raises(AttributeError):
            xp.definitely_not_an_array_function


class TestEnvSelection:
    def test_env_variable_picks_the_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert backend._initial_backend().name == "numpy"
        monkeypatch.delenv("REPRO_BACKEND")
        assert backend._initial_backend().name == "numpy"

    def test_env_variable_rejects_unknown_names(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cuda13")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            backend._initial_backend()


class TestModelsRunOnAStubBackend:
    def test_forward_math_routes_through_xp(self, tiny_dataset,
                                            restore_numpy_backend):
        """Swapping in a full alternative namespace (numpy re-registered
        under another name) leaves inference working — proof the model
        stack holds no direct numpy references."""
        from repro.baselines import build_model
        from repro.data import NUM_FEATURES

        model = build_model("LR", NUM_FEATURES,
                            numpy.random.default_rng(0))
        batch = tiny_dataset.subset(numpy.arange(3))
        reference = model.predict_logits(batch)
        set_backend(Backend("stub", numpy))
        numpy.testing.assert_array_equal(model.predict_logits(batch),
                                         reference)
