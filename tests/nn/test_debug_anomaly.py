"""Tests for the anomaly-detection and graph-audit subsystem."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ops
from repro.nn.debug import (AnomalyError, GraphAuditError, audit_backward,
                            detect_anomaly, graph_path)
from repro.nn.tensor import Tensor
import repro.nn.tensor as tensor_mod


class TestForwardAnomaly:
    def test_nan_pinpoints_offending_op_by_name(self):
        """Acceptance criterion: the error names the first op that
        produced a NaN, not just 'something went wrong'."""
        x = Tensor(np.array([0.5, 2.0]), requires_grad=True)
        three = Tensor(np.array([3.0, 3.0]))
        with pytest.raises(AnomalyError, match=r"op 'log'"):
            with detect_anomaly(), np.errstate(invalid="ignore"):
                # exp(x) - 3 is negative for x = 0.5 -> log produces NaN.
                ops.log(ops.sub(ops.exp(x), three))

    def test_inf_pinpoints_div(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([1.0, 0.0]))
        with pytest.raises(AnomalyError, match=r"op 'div'.*Inf"):
            with detect_anomaly(), np.errstate(divide="ignore"):
                ops.div(a, b)

    def test_error_includes_graph_path(self):
        x = Tensor(np.array([0.5]), requires_grad=True)
        three = Tensor(np.array([3.0]))
        with pytest.raises(AnomalyError, match=r"log <- sub <- exp"):
            with detect_anomaly(), np.errstate(invalid="ignore"):
                ops.log(ops.sub(ops.exp(x), three))

    def test_healthy_graph_raises_nothing(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)),
                   requires_grad=True)
        with detect_anomaly():
            loss = ops.sum(ops.sigmoid(ops.tanh(x)))
            loss.backward()
        assert np.isfinite(x.grad).all()

    def test_state_restored_after_exception(self):
        from repro.nn.debug import anomaly_enabled
        x = Tensor(np.array([-1.0]))
        with pytest.raises(AnomalyError):
            with detect_anomaly(), np.errstate(invalid="ignore"):
                ops.log(x)
        assert not anomaly_enabled()
        assert tensor_mod._ANOMALY_STATE is None
        # And NaNs pass silently again outside the context.
        with np.errstate(invalid="ignore"):
            out = ops.log(x)
        assert np.isnan(out.data).all()


class TestBackwardAnomaly:
    def test_inf_gradient_pinpoints_sqrt(self):
        # sqrt(0) is finite forward but its backward 1/(2 sqrt(0)) is Inf.
        x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
        with pytest.raises(AnomalyError, match=r"op 'sqrt'"):
            with detect_anomaly(check_forward=False), \
                    np.errstate(divide="ignore"):
                ops.sum(ops.sqrt(x)).backward()

    def test_non_finite_seed_rejected(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        out = ops.mul(x, x)
        with pytest.raises(AnomalyError, match="seed"):
            with detect_anomaly():
                out.backward(np.array([np.nan]))


class TestOpNames:
    def test_op_name_recorded_under_anomaly_mode(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = Tensor(np.array([3.0]))
        with detect_anomaly():
            out = ops.mul(a, b)
        assert out.op_name == "mul"

    def test_op_name_derivable_without_anomaly_mode(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = ops.exp(a)
        assert out.op_name == "exp"

    def test_leaf_has_no_op_name(self):
        assert Tensor(np.array([1.0])).op_name is None

    def test_graph_path_renders_chain(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        out = ops.log(ops.exp(ops.mul(x, x)))
        assert graph_path(out) == "log <- exp <- mul <- leaf"


class TestAuditBackward:
    def _diamond(self):
        # x -> (square, exp) -> add : interior nodes shared by two paths.
        x = Tensor(np.array([0.3, -0.7]), requires_grad=True)
        left = ops.mul(x, x)
        right = ops.exp(x)
        out = ops.sum(ops.add(left, right))
        return x, out

    def test_healthy_diamond_passes(self):
        x, out = self._diamond()
        audit = audit_backward(out)
        assert audit.num_interior == 4
        assert audit.num_leaves == 1
        assert set(audit.visits.values()) == {1}
        np.testing.assert_allclose(x.grad, 2 * x.data + np.exp(x.data))

    def test_each_node_visited_exactly_once(self):
        _, out = self._diamond()
        audit = audit_backward(out)
        assert all(count == 1 for count in audit.visits.values()), audit.visits

    def test_catches_double_invocation(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = ops.mul(x, x)
        z = ops.exp(y)
        # Sabotage: z's backward also re-runs y's backward, double-counting.
        original_z_backward = z._backward

        def double_visit(grad):
            original_z_backward(grad)
            y._backward(np.ones_like(y.data))

        z._backward = double_visit
        with pytest.raises(GraphAuditError, match="invoked 2 times"):
            audit_backward(z)

    def test_catches_accumulation_into_frozen_tensor(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        frozen = Tensor(np.array([3.0]))  # requires_grad=False

        def bad_backward(grad):
            x._accumulate(grad * frozen.data)
            frozen._accumulate(grad * x.data)  # must be caught

        out = Tensor._make(x.data * frozen.data, (x, frozen), bad_backward)
        assert out.requires_grad
        with pytest.raises(GraphAuditError,
                           match="requires_grad=False"):
            audit_backward(out)

    def test_audit_restores_accumulate_after_failure(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        frozen = Tensor(np.array([3.0]))

        def bad_backward(grad):
            frozen._accumulate(grad)

        out = Tensor._make(x.data * 2.0, (x, frozen), bad_backward)
        with pytest.raises(GraphAuditError):
            audit_backward(out)
        # The class-level patch must not leak into normal operation.
        y = Tensor(np.array([1.0]), requires_grad=True)
        ops.sum(ops.mul(y, y)).backward()
        np.testing.assert_allclose(y.grad, 2.0)

    def test_audit_works_on_module_loss(self):
        rng = np.random.default_rng(3)
        layer = nn.layers.Dense(4, 2, rng, activation="tanh")
        x = Tensor(rng.normal(size=(3, 4)))
        loss = ops.sum(ops.mul(layer(x), layer(x)))
        audit = audit_backward(loss)
        assert audit.num_interior > 0
        assert set(audit.visits.values()) == {1}
