"""Property-style broadcasting checks for the binary elementwise ops.

For every shape pair in a grid (scalar, row, column, full, 3-D, trailing
vector) and every broadcasting binary op, assert that the gradient of
each input has the *input's* shape — i.e. :func:`repro.nn.tensor.unbroadcast`
round-trips the broadcast — and that the gradients agree with central
finite differences.
"""

import numpy as np
import pytest

from repro.nn import ops
from repro.nn.gradcheck import gradcheck
from repro.nn.tensor import Tensor, unbroadcast

# (shape_a, shape_b) pairs that exercise every broadcasting rule:
# scalar vs array, size-1 axes in either operand, missing leading axes,
# and both operands needing expansion at once.
SHAPE_PAIRS = [
    ((), (2, 3)),
    ((2, 3), ()),
    ((1, 3), (2, 3)),
    ((2, 1), (2, 3)),
    ((2, 3), (1, 3)),
    ((2, 1), (1, 3)),
    ((3,), (2, 3)),
    ((2, 1, 3), (1, 4, 3)),
    ((4,), (2, 3, 4)),
]

BINARY_OPS = ["add", "sub", "mul", "div", "maximum", "minimum"]


def _seed(op_name, shape_a, shape_b, trial=0):
    # hash() is randomized per process for strings; derive a stable seed.
    return (101 * BINARY_OPS.index(op_name)
            + 13 * SHAPE_PAIRS.index((shape_a, shape_b))
            + 7919 * trial)


def _operands(rng, op_name, shape_a, shape_b):
    a = rng.normal(size=shape_a)
    b = rng.normal(size=shape_b)
    if op_name == "div":
        # Keep the denominator away from 0 so finite differences behave.
        b = np.sign(b) * (np.abs(b) + 0.5)
    if op_name in ("maximum", "minimum"):
        # Keep every broadcast pair separated: at a tie the subgradient is
        # split (tested in test_ops_gradcheck), and near-ties make central
        # differences straddle the kink.  Drawing |a| from [2, 3] with
        # random sign and b from [-1, 1] guarantees a gap of at least 1
        # for every pairing while still exercising both winners.
        a = rng.uniform(2.0, 3.0, size=shape_a) * \
            np.where(rng.random(size=shape_a) < 0.5, -1.0, 1.0)
        b = rng.uniform(-1.0, 1.0, size=shape_b)
    return a, b


@pytest.mark.parametrize("op_name", BINARY_OPS)
@pytest.mark.parametrize("shape_a,shape_b", SHAPE_PAIRS)
def test_broadcast_grad_shapes_and_values(op_name, shape_a, shape_b):
    rng = np.random.default_rng(_seed(op_name, shape_a, shape_b))
    op = getattr(ops, op_name)
    a, b = _operands(rng, op_name, shape_a, shape_b)

    ta, tb = Tensor(a, requires_grad=True), Tensor(b, requires_grad=True)
    out = op(ta, tb)
    assert out.shape == np.broadcast_shapes(shape_a, shape_b)
    ops.sum(out).backward()
    assert ta.grad.shape == ta.data.shape, (
        f"{op_name}: grad of input a has shape {ta.grad.shape}, "
        f"expected {ta.data.shape} (unbroadcast did not round-trip)")
    assert tb.grad.shape == tb.data.shape

    gradcheck(lambda x, y: ops.sum(ops.mul(op(x, y), op(x, y))), a, b)


@pytest.mark.gradcheck
@pytest.mark.parametrize("op_name", BINARY_OPS)
@pytest.mark.parametrize("shape_a,shape_b", SHAPE_PAIRS)
def test_broadcast_gradcheck_multi_seed(op_name, shape_a, shape_b):
    op = getattr(ops, op_name)
    for trial in range(3):
        rng = np.random.default_rng(_seed(op_name, shape_a, shape_b, trial))
        a, b = _operands(rng, op_name, shape_a, shape_b)
        gradcheck(lambda x, y: ops.sum(ops.mul(op(x, y), op(x, y))), a, b)


class TestUnbroadcast:
    """Direct unit tests of the gradient-reduction helper."""

    def test_identity_when_shapes_match(self):
        g = np.arange(6.0).reshape(2, 3)
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_over_expanded_leading_axis(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, 4.0)

    def test_sums_over_size_one_axis_keeping_dims(self):
        g = np.arange(6.0).reshape(2, 3)
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        np.testing.assert_allclose(out[:, 0], g.sum(axis=1))

    def test_scalar_target_collapses_everything(self):
        g = np.ones((2, 3, 4))
        out = unbroadcast(g, ())
        assert np.shape(out) == ()
        assert float(out) == 24.0

    def test_mixed_leading_and_size_one(self):
        g = np.ones((5, 2, 1, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        np.testing.assert_allclose(out, 10.0)
