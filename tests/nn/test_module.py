"""Tests of the module system: registration, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn.layers import Dense, Dropout
from repro.nn.module import Module, ModuleList, Parameter


class TwoLayer(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Dense(4, 8, rng)
        self.second = Dense(8, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


@pytest.fixture
def model(rng):
    return TwoLayer(rng)


class TestRegistration:
    def test_named_parameters_qualified(self, model):
        names = dict(model.named_parameters())
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names

    def test_parameter_count(self, model):
        # (4*8 + 8) + (8*2 + 2) + 1
        assert model.num_parameters() == 40 + 18 + 1

    def test_reassignment_replaces(self, rng):
        m = TwoLayer(rng)
        m.first = Dense(4, 8, rng)
        assert len(list(m.named_parameters())) == 5

    def test_parameter_then_module_same_name(self, rng):
        m = Module()
        m.thing = Parameter(np.zeros(2))
        m.thing = Dense(2, 2, rng)
        names = [n for n, _ in m.named_parameters()]
        assert names == ["thing.weight", "thing.bias"]

    def test_modules_iterates_descendants(self, model):
        assert len(list(model.modules())) == 3


class TestStateDict:
    def test_round_trip(self, model, rng):
        state = model.state_dict()
        other = TwoLayer(rng)
        other.load_state_dict(state)
        for (_, p1), (_, p2) in zip(model.named_parameters(),
                                    other.named_parameters()):
            assert np.array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self, model):
        state = model.state_dict()
        state["scale"][...] = 99.0
        assert model.scale.data[0] == 1.0

    def test_missing_key_raises(self, model):
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self, model):
        state = model.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, model):
        state = model.state_dict()
        state["scale"] = np.zeros(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestModes:
    def test_train_eval_recursive(self, rng):
        m = Module()
        m.drop = Dropout(0.5, rng)
        m.eval()
        assert not m.drop.training
        m.train()
        assert m.drop.training

    def test_zero_grad_clears_all(self, model, rng):
        x = nn.Tensor(rng.normal(size=(2, 4)))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestModuleList:
    def test_registers_children(self, rng):
        layers = ModuleList([Dense(2, 2, rng), Dense(2, 2, rng)])
        assert len(layers) == 2
        assert len(list(layers.named_parameters())) == 4

    def test_indexing_and_iteration(self, rng):
        layers = ModuleList([Dense(2, 3, rng)])
        assert layers[0].out_features == 3
        assert [l.out_features for l in layers] == [3]

    def test_append(self, rng):
        layers = ModuleList()
        layers.append(Dense(2, 2, rng))
        assert len(layers) == 1

    def test_rejects_non_module(self):
        with pytest.raises(TypeError):
            ModuleList([42])
