"""Registry-driven finite-difference sweep over every differentiable op.

The op registry in :mod:`repro.nn.ops` records each primitive together
with a sample-input factory.  These tests enforce the contract:

* every op exported in ``ops.__all__`` is registered, and vice versa;
* every registered op declares a sample factory (a new op cannot land
  without gradcheck coverage — the sweep fails loudly otherwise);
* every sample of every op passes a central-finite-difference check.

A fast smoke pass (first sample per op) runs in the default tier-1
suite; the exhaustive multi-seed sweep is marked ``gradcheck`` and runs
via ``pytest -m gradcheck``.
"""

import numpy as np
import pytest

from repro.nn import Tensor, ops
from repro.nn.dtype import autocast
from repro.nn.gradcheck import gradcheck

OP_NAMES = sorted(ops.registered_ops())


class TestRegistryContract:
    def test_every_public_op_is_registered(self):
        registry = ops.registered_ops()
        missing = [name for name in ops.__all__ if name not in registry]
        assert not missing, (
            f"ops exported in __all__ but absent from the registry "
            f"(decorate them with @differentiable): {missing}")

    def test_every_registered_op_is_public(self):
        extra = [name for name in ops.registered_ops()
                 if name not in ops.__all__]
        assert not extra, f"registered ops missing from __all__: {extra}"

    def test_every_op_declares_a_sample_factory(self):
        bare = [name for name, spec in ops.registered_ops().items()
                if spec.sample_factory is None]
        assert not bare, (
            f"ops registered without sample-input factories: {bare}")

    def test_registering_without_factory_fails_the_sweep(self):
        """The failure mode the registry exists to produce: an op landed
        with no gradcheck samples makes sample_inputs (and therefore the
        parametrized sweep) raise."""
        @ops.differentiable()
        def doomed_op(a):  # pragma: no cover - never exercised
            return a

        try:
            assert "doomed_op" in ops.registered_ops()
            with pytest.raises(ops.MissingSampleFactory,
                               match="doomed_op.*sample-input factory"):
                ops.sample_inputs("doomed_op", np.random.default_rng(0))
        finally:
            ops._REGISTRY.pop("doomed_op", None)

    def test_sample_inputs_rejects_unknown_op(self):
        with pytest.raises(KeyError):
            ops.sample_inputs("no_such_op", np.random.default_rng(0))

    def test_samples_are_scalar_valued(self):
        rng = np.random.default_rng(99)
        for name in OP_NAMES:
            for sample in ops.sample_inputs(name, rng):
                tensors = [ops.as_tensor(a) for a in sample.arrays]
                out = sample.build(*tensors)
                assert out.size == 1, (
                    f"sample for {name!r} does not build a scalar")


@pytest.mark.parametrize("name", OP_NAMES)
def test_gradcheck_smoke(name):
    """Tier-1 smoke subset: first sample of every registered op."""
    rng = np.random.default_rng(OP_NAMES.index(name))
    sample = ops.sample_inputs(name, rng)[0]
    gradcheck(sample.build, *sample.arrays)


@pytest.mark.parametrize("dtype", [np.float64, np.float32],
                         ids=["float64", "float32"])
@pytest.mark.parametrize("name", OP_NAMES)
def test_dtype_plane_stability(name, dtype):
    """Every sample of every op, run in both ``REPRO_DTYPE`` planes.

    The gradcheck sweep above forces float64 internally, so on its own
    the registry only ever exercises float64 — this sweep instead runs
    each sample's forward *and* backward under the ambient policy and
    asserts no NEP-50 dtype drift: the output and every input gradient
    must stay in the policy dtype (numpy scalars and bool intermediates
    are "strong" under NEP 50 and silently promote to float64 when an
    op's backward mixes them in carelessly).
    """
    rng = np.random.default_rng(500 + OP_NAMES.index(name))
    with autocast(dtype):
        for k, sample in enumerate(ops.sample_inputs(name, rng)):
            tensors = [Tensor(np.asarray(a, dtype=dtype),
                              requires_grad=True)
                       for a in sample.arrays]
            out = sample.build(*tensors)
            assert out.data.dtype == dtype, (
                f"op {name!r}, sample {k}: forward drifted to "
                f"{out.data.dtype}")
            out.backward()
            for i, tensor in enumerate(tensors):
                assert tensor.grad is not None, (
                    f"op {name!r}, sample {k}: input {i} got no gradient")
                assert tensor.grad.dtype == dtype, (
                    f"op {name!r}, sample {k}: grad[{i}] drifted to "
                    f"{tensor.grad.dtype}")


@pytest.mark.gradcheck
@pytest.mark.parametrize("name", OP_NAMES)
def test_gradcheck_exhaustive(name):
    """Every sample of every op, across independent seeds."""
    for trial in range(3):
        rng = np.random.default_rng(1000 + 17 * OP_NAMES.index(name) + trial)
        for k, sample in enumerate(ops.sample_inputs(name, rng)):
            try:
                gradcheck(sample.build, *sample.arrays)
            except AssertionError as exc:  # re-raise with sample context
                raise AssertionError(
                    f"op {name!r}, sample {k}, trial {trial}: {exc}") from exc
