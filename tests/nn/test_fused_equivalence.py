"""Seeded equivalence of the fused kernels vs their unfused compositions.

The fused GRU step (:func:`repro.nn.ops.gru_step`), the fused
softmax-cross-entropy (:func:`repro.nn.ops.softmax_cross_entropy`), and
the shared-buffer sequence unbind (:func:`repro.nn.ops.unbind_time`)
must be drop-in replacements: forward values within tolerance of the
op-by-op reference (most are bit-identical), and backward both passing
finite-difference gradcheck and agreeing with the reference composition's
gradients — across batch sizes including 1 and non-contiguous inputs.

Every test runs in two precision lanes: float64 at 1e-10 and float32 at
1e-4 (scaled for the ~1e-7 relative rounding of single precision).  The
gradcheck-based tests force float64 internally regardless of lane; they
stay in the sweep to prove the fused ops build correct float64 graphs
even when entered from a float32 ambient policy.
"""

import numpy as np
import pytest

from repro.bench import profile
from repro.nn import Tensor, ops
from repro.nn.dtype import autocast
from repro.nn.gradcheck import check_module, gradcheck
from repro.nn.layers import GRU, GRUCell
from repro.nn.losses import cross_entropy

_TOLS = {np.dtype(np.float64): 1e-10, np.dtype(np.float32): 1e-4}


@pytest.fixture(autouse=True, params=[np.float64, np.float32],
                ids=["float64", "float32"])
def dtype_policy(request):
    with autocast(request.param):
        yield np.dtype(request.param)


@pytest.fixture
def TOL(dtype_policy):
    return _TOLS[dtype_policy]


def _max_diff(a, b):
    return float(np.abs(np.asarray(a) - np.asarray(b)).max())


def _cell(rng, input_size=5, hidden_size=4, fused=True):
    return GRUCell(input_size, hidden_size, rng, fused=fused)


def _cell_grads(cell, x, h):
    """Input and parameter gradients of sum(step(x, h)^2)."""
    cell.zero_grad()
    xt = Tensor(x, requires_grad=True)
    ht = Tensor(h, requires_grad=True)
    out = cell(xt, ht)
    (out * out).sum().backward()
    grads = {"x": xt.grad.copy(), "h": ht.grad.copy()}
    grads.update({name: p.grad.copy()
                  for name, p in cell.named_parameters()})
    return out.data.copy(), grads


class TestFusedGRUStep:
    @pytest.mark.parametrize("batch", [1, 2, 7])
    def test_forward_matches_reference(self, batch, TOL):
        rng = np.random.default_rng(batch)
        cell = _cell(rng)
        x = rng.normal(size=(batch, 5))
        h = rng.normal(size=(batch, 4))
        fused = cell(Tensor(x), Tensor(h)).data
        reference = cell.reference_step(Tensor(x), Tensor(h)).data
        assert _max_diff(fused, reference) < TOL

    @pytest.mark.parametrize("batch", [1, 3, 8])
    def test_backward_matches_reference(self, batch, TOL):
        rng = np.random.default_rng(100 + batch)
        cell = _cell(rng)
        x = rng.normal(size=(batch, 5))
        h = rng.normal(size=(batch, 4))
        cell.fused = True
        _, fused = _cell_grads(cell, x, h)
        cell.fused = False
        _, reference = _cell_grads(cell, x, h)
        for name in fused:
            assert _max_diff(fused[name], reference[name]) < TOL, name

    def test_non_contiguous_inputs(self, TOL):
        rng = np.random.default_rng(5)
        cell = _cell(rng)
        x = rng.normal(size=(3, 10))[:, ::2]        # stride-2 view
        h = np.asfortranarray(rng.normal(size=(3, 4)))
        assert not x.flags["C_CONTIGUOUS"]
        fused_out, fused = _cell_grads(cell, x, h)
        cell.fused = False
        ref_out, reference = _cell_grads(cell, x, h)
        assert _max_diff(fused_out, ref_out) < TOL
        for name in fused:
            assert _max_diff(fused[name], reference[name]) < TOL, name

    def test_gru_step_gradcheck_all_inputs(self):
        rng = np.random.default_rng(9)
        arrays = [rng.normal(size=(2, 3)), rng.normal(size=(2, 4)),
                  rng.normal(size=(3, 12)) * 0.5,
                  rng.normal(size=(4, 12)) * 0.5,
                  rng.normal(size=12) * 0.1, rng.normal(size=12) * 0.1]
        gradcheck(lambda *ts: ops.sum(ops.mul(ops.gru_step(*ts),
                                              ops.gru_step(*ts))),
                  *arrays)

    def test_fused_cell_passes_check_module(self):
        rng = np.random.default_rng(11)
        cell = _cell(rng, input_size=3, hidden_size=3)
        x = rng.normal(size=(4, 3))
        h = rng.normal(size=(4, 3))

        def loss(module):
            out = module(Tensor(x), Tensor(h))
            return (out * out).sum()

        check_module(cell, loss)

    def test_rejects_mismatched_weight_shapes(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="gru_step weight shapes"):
            ops.gru_step(rng.normal(size=(2, 5)), rng.normal(size=(2, 4)),
                         rng.normal(size=(5, 9)), rng.normal(size=(4, 12)),
                         np.zeros(12), np.zeros(12))


class TestFusedGRUSequence:
    @pytest.mark.parametrize("batch", [1, 3])
    def test_full_sequence_matches_unfused(self, batch, TOL):
        """End-to-end: fused cell + unbind_time loop vs the reference
        composition, with a graph-connected input so the shared-buffer
        backward of unbind_time is exercised too."""
        rng = np.random.default_rng(batch + 40)
        gru = GRU(5, 4, np.random.default_rng(1))
        x = rng.normal(size=(batch, 6, 5))

        results = {}
        for fused in (True, False):
            gru.cell.fused = fused
            gru.zero_grad()
            xt = Tensor(x, requires_grad=True)
            out = gru(xt)
            (out * out).sum().backward()
            results[fused] = (out.data.copy(), xt.grad.copy(),
                              {n: p.grad.copy()
                               for n, p in gru.named_parameters()})

        out_f, gx_f, params_f = results[True]
        out_r, gx_r, params_r = results[False]
        assert _max_diff(out_f, out_r) < TOL
        assert _max_diff(gx_f, gx_r) < TOL
        for name in params_f:
            assert _max_diff(params_f[name], params_r[name]) < TOL, name


class TestUnbindTime:
    def test_slices_match_getitem(self, dtype_policy):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 5, 3)).astype(dtype_policy)
        steps = ops.unbind_time(Tensor(x))
        assert len(steps) == 5
        for t, step in enumerate(steps):
            assert np.array_equal(step.data, x[:, t])

    def test_gradient_matches_getitem_composition(self, TOL):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 4, 2))

        def weighted(slices):
            total = None
            for i, s in enumerate(slices):
                term = float(i + 1) * (s * s).sum()
                total = term if total is None else total + term
            return total

        xt = Tensor(x, requires_grad=True)
        weighted(ops.unbind_time(xt)).backward()
        xr = Tensor(x, requires_grad=True)
        weighted([xr[:, t] for t in range(x.shape[1])]).backward()
        assert _max_diff(xt.grad, xr.grad) < TOL


class TestFusedSoftmaxCrossEntropy:
    def _reference(self, logits, targets):
        log_probs = ops.log_softmax(logits, axis=-1)
        rows = np.arange(log_probs.shape[0])
        return -ops.getitem(log_probs, (rows, targets))

    @pytest.mark.parametrize("batch", [1, 4])
    def test_forward_bit_identical(self, batch):
        rng = np.random.default_rng(batch + 20)
        logits = rng.normal(size=(batch, 5)) * 3.0
        targets = rng.integers(0, 5, size=batch)
        fused = ops.softmax_cross_entropy(Tensor(logits), targets).data
        reference = self._reference(Tensor(logits), targets).data
        assert np.array_equal(fused, reference)

    @pytest.mark.parametrize("batch", [1, 4])
    def test_backward_matches_reference(self, batch, TOL):
        rng = np.random.default_rng(batch + 30)
        logits = rng.normal(size=(batch, 5))
        targets = rng.integers(0, 5, size=batch)
        lf = Tensor(logits, requires_grad=True)
        ops.mean(ops.softmax_cross_entropy(lf, targets)).backward()
        lr = Tensor(logits, requires_grad=True)
        ops.mean(self._reference(lr, targets)).backward()
        assert _max_diff(lf.grad, lr.grad) < TOL

    def test_non_contiguous_logits(self, TOL):
        rng = np.random.default_rng(6)
        wide = rng.normal(size=(3, 10))
        logits = wide[:, ::2]
        assert not logits.flags["C_CONTIGUOUS"]
        targets = np.array([0, 4, 2])
        lf = Tensor(logits, requires_grad=True)
        ops.sum(ops.softmax_cross_entropy(lf, targets)).backward()
        lr = Tensor(logits, requires_grad=True)
        ops.sum(self._reference(lr, targets)).backward()
        assert _max_diff(lf.grad, lr.grad) < TOL

    def test_gradcheck(self):
        rng = np.random.default_rng(8)
        targets = np.array([2, 0, 1, 3])
        gradcheck(lambda a: ops.mean(ops.softmax_cross_entropy(a, targets)),
                  rng.normal(size=(4, 4)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="softmax_cross_entropy"):
            ops.softmax_cross_entropy(np.zeros((2, 3, 4)), np.array([0, 1]))

    def test_losses_cross_entropy_routes_through_fused_op(self):
        logits = Tensor(np.zeros((3, 4)), requires_grad=True)
        with profile() as prof:
            cross_entropy(logits, np.array([0, 1, 2]))
        assert prof.forward_calls("softmax_cross_entropy") == 1
        assert prof.forward_calls("log_softmax") == 0


class TestRegistryCoverage:
    """Satellite: the fused ops are first-class registry citizens, so the
    registry-driven gradcheck sweep covers them automatically."""

    @pytest.mark.parametrize("name",
                             ["gru_step", "softmax_cross_entropy",
                              "unbind_time"])
    def test_registered_with_sample_factory(self, name):
        registry = ops.registered_ops()
        assert name in registry
        assert registry[name].sample_factory is not None
        samples = ops.sample_inputs(name, np.random.default_rng(0))
        assert samples, f"{name} factory produced no samples"
        for sample in samples:
            gradcheck(sample.build, *sample.arrays)
