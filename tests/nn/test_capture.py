"""Inference graph capture: bit-identity, invalidation, validation.

The load-bearing guarantee is absolute: for every registry model,
under both precision-policy dtypes, ``CapturedGraph.replay`` must be
*bit-identical* (``np.array_equal``, not allclose) to the eager
``predict_logits`` — on the traced batch and on fresh batches of the
same shape.  The remaining tests pin the failure modes: shape-pinned
replay (:class:`CaptureShapeError`), policy/storage invalidation
(:class:`CaptureError`), and trace validation catching forwards that
compute outside the op layer or bake batch data into constants
(:class:`CaptureUnsupportedError`).
"""

import numpy as np
import pytest

from repro.baselines import ALL_MODEL_NAMES, build_model
from repro.data import NUM_FEATURES
from repro.nn import capture, ops
from repro.nn.dtype import autocast

from tests.baselines.test_registry import SMALL_KWARGS


def _small_model(name, dtype, seed=0):
    with autocast(dtype):
        return build_model(name, NUM_FEATURES, np.random.default_rng(seed),
                           **SMALL_KWARGS[name])


# ----------------------------------------------------------------------
# Bit-identity across the whole registry, both precision planes
# ----------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_replay_matches_eager_exactly(self, name, dtype, tiny_dataset):
        model = _small_model(name, dtype)
        traced_batch = tiny_dataset.subset(np.arange(5))
        fresh_batch = tiny_dataset.subset(np.arange(7, 12))
        with autocast(dtype):
            graph = capture.trace(model, traced_batch)
            for batch in (traced_batch, fresh_batch):
                eager = model.predict_logits(batch)
                replayed = graph.replay(batch)
                assert replayed.dtype == eager.dtype
                assert np.array_equal(eager, replayed), (
                    f"{name} replay diverges from eager under {dtype}")

    def test_replay_is_reusable_and_allocates_no_graph(self, tiny_dataset):
        model = _small_model("ELDA-Net", "float32")
        batch = tiny_dataset.subset(np.arange(4))
        with autocast("float32"):
            graph = capture.trace(model, batch)
            first = graph.replay(batch)
            second = graph.replay(batch)
        # fresh output array per call, identical contents
        assert first is not second
        assert np.array_equal(first, second)
        assert graph.num_thunks <= graph.num_steps
        assert graph.batch_shape["values"] == batch.values.shape

    def test_inplace_weight_updates_flow_through(self, tiny_dataset):
        """Optimizer-style in-place updates need no re-trace."""
        model = _small_model("GRU", "float32")
        batch = tiny_dataset.subset(np.arange(3))
        with autocast("float32"):
            graph = capture.trace(model, batch)
            for _, param in model.named_parameters():
                param.data += np.float32(0.01)
            assert np.array_equal(model.predict_logits(batch),
                                  graph.replay(batch))


# ----------------------------------------------------------------------
# Invalidation: shape pinning, policy changes, storage swaps
# ----------------------------------------------------------------------

class TestInvalidation:
    @pytest.fixture()
    def traced(self, tiny_dataset):
        model = _small_model("GRU", "float32")
        batch = tiny_dataset.subset(np.arange(4))
        with autocast("float32"):
            graph = capture.trace(model, batch)
        return model, graph, batch

    def test_shape_mismatch_raises_capture_shape_error(self, traced,
                                                       tiny_dataset):
        _, graph, _ = traced
        wrong = tiny_dataset.subset(np.arange(6))
        with autocast("float32"), \
                pytest.raises(capture.CaptureShapeError,
                              match="shape-pinned"):
            graph.replay(wrong)

    def test_dtype_policy_change_raises(self, traced):
        _, graph, batch = traced
        with autocast("float64"), \
                pytest.raises(capture.CaptureError,
                              match="captured under float32"):
            graph.replay(batch)

    def test_parameter_storage_swap_raises(self, traced):
        model, graph, batch = traced
        param = next(tensor for _, tensor in model.named_parameters())
        param.data = param.data.copy()  # e.g. Module.to()
        with autocast("float32"), \
                pytest.raises(capture.CaptureError,
                              match="storage replacement requires"):
            graph.replay(batch)


# ----------------------------------------------------------------------
# Trace validation: forwards that cannot be captured fail loudly
# ----------------------------------------------------------------------

class _OffLayerModel:
    """Computes its output with raw numpy — no op ever records it."""

    def named_parameters(self):
        return iter(())

    def predict_logits(self, batch):
        return np.asarray(batch.values).sum(axis=(1, 2))


class _DataBakingModel:
    """Bakes a batch statistic into an op argument as a literal."""

    def named_parameters(self):
        return iter(())

    def predict_logits(self, batch):
        scale = float(np.asarray(batch.values).sum())
        out = ops.mul(ops.as_tensor(batch.values), scale)
        return ops.sum(ops.sum(out, axis=-1), axis=-1).data


class TestTraceValidation:
    def test_output_outside_op_layer_is_rejected(self, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(3))
        with pytest.raises(capture.CaptureUnsupportedError,
                           match="outside the op layer"):
            capture.trace(_OffLayerModel(), batch)

    def test_batch_dependent_constants_are_rejected(self, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(3))
        with pytest.raises(capture.CaptureUnsupportedError,
                           match="batch-dependent"):
            capture.trace(_DataBakingModel(), batch)

    def test_validation_can_be_skipped_for_known_safe_models(
            self, tiny_dataset):
        """validate=False still yields a working graph (one trace)."""
        model = _small_model("LR", "float32")
        batch = tiny_dataset.subset(np.arange(3))
        with autocast("float32"):
            graph = capture.trace(model, batch, validate=False)
            assert np.array_equal(model.predict_logits(batch),
                                  graph.replay(batch))

    def test_nested_capture_is_rejected(self, tiny_dataset):
        model = _small_model("LR", "float32")
        batch = tiny_dataset.subset(np.arange(3))

        class _Reentrant:
            def named_parameters(self):
                return iter(())

            def predict_logits(self, inner):
                capture.trace(model, inner)

        with autocast("float32"), \
                pytest.raises(capture.CaptureError, match="inside another"):
            capture.trace(_Reentrant(), batch)


# ----------------------------------------------------------------------
# CaptureBatch plumbing
# ----------------------------------------------------------------------

class TestCaptureBatch:
    def test_from_batch_casts_and_copies(self, tiny_dataset):
        src = tiny_dataset.subset(np.arange(2))
        cb = capture.CaptureBatch.from_batch(src, np.float32)
        assert len(cb) == 2
        for field in ("values", "mask", "deltas", "ever_observed"):
            arr = getattr(cb, field)
            assert arr.dtype == np.float32
            assert arr is not getattr(src, field)
