"""Tests of the Tensor class and backward machinery."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ops
from repro.nn.tensor import unbroadcast


class TestConstruction:
    def test_wraps_scalar(self):
        t = nn.Tensor(3.0)
        assert t.shape == ()
        assert t.item() == 3.0

    def test_wraps_list(self):
        t = nn.Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)

    def test_casts_to_policy_dtype(self):
        t = nn.Tensor(np.arange(4, dtype=np.int32))
        assert t.dtype == nn.get_default_dtype()

    def test_no_copy_when_dtype_matches_policy(self):
        arr = np.zeros(3, dtype=nn.get_default_dtype())
        t = nn.Tensor(arr)
        assert t.data is arr

    def test_casts_wide_floats_down_under_float32_policy(self):
        with nn.autocast(np.float32):
            t = nn.Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_float64_preserved_under_float64_policy(self):
        arr = np.zeros(3)
        with nn.autocast(np.float64):
            t = nn.Tensor(arr)
        assert t.data is arr

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(nn.Tensor(1.0, requires_grad=True))

    def test_len(self):
        assert len(nn.Tensor([1.0, 2.0])) == 2

    def test_as_tensor_passthrough(self):
        t = nn.Tensor(1.0)
        assert nn.as_tensor(t) is t


class TestBackward:
    def test_scalar_chain(self):
        x = nn.Tensor(2.0, requires_grad=True)
        y = x * x * x
        y.backward()
        assert np.isclose(x.grad, 12.0)

    def test_grad_accumulates_over_reuse(self):
        x = nn.Tensor(3.0, requires_grad=True)
        y = x * x + x
        y.backward()
        assert np.isclose(x.grad, 7.0)

    def test_diamond_graph(self):
        x = nn.Tensor(2.0, requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        (a * b).backward()  # d/dx 15x^2 = 30x
        assert np.isclose(x.grad, 60.0)

    def test_backward_requires_scalar_without_grad(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_with_explicit_gradient(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [2.0, 20.0])

    def test_backward_rejects_wrong_gradient_shape(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward(np.zeros(3))

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            nn.Tensor(1.0).backward()

    def test_deep_graph_no_recursion_error(self):
        x = nn.Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert np.isclose(x.grad, 1.0)

    def test_zero_grad(self):
        x = nn.Tensor(1.0, requires_grad=True)
        (x * x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_second_backward_accumulates_into_leaves(self):
        x = nn.Tensor(2.0, requires_grad=True)
        (x * x).backward()
        (x * x).backward()
        assert np.isclose(x.grad, 8.0)


class TestNoGrad:
    def test_no_graph_inside_context(self):
        x = nn.Tensor(1.0, requires_grad=True)
        with nn.no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_restores_state(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_nested(self):
        with nn.no_grad():
            with nn.no_grad():
                pass
            assert not nn.is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = nn.Tensor(1.0, requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        assert y.data == 2.0


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.all(unbroadcast(g, (2, 3)) == 4.0)

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1)
        assert np.all(out == 3.0)

    def test_scalar_target(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, ()).shape == ()
        assert unbroadcast(g, ()) == 6.0


class TestOperatorSugar:
    def test_radd_rsub_rmul_rdiv(self):
        x = nn.Tensor(4.0, requires_grad=True)
        y = 1.0 + x - 2.0
        z = 2.0 * y / 2.0
        w = 8.0 / x
        (z + w).backward()
        # d/dx (x - 1 + 8/x) = 1 - 8/x^2 = 1 - 0.5
        assert np.isclose(x.grad, 0.5)

    def test_neg_and_pow(self):
        x = nn.Tensor(3.0, requires_grad=True)
        (-(x ** 2)).backward()
        assert np.isclose(x.grad, -6.0)

    def test_pow_rejects_tensor_exponent(self):
        x = nn.Tensor(2.0)
        with pytest.raises(TypeError):
            ops.power(x, nn.Tensor(2.0))

    def test_transpose_property(self):
        x = nn.Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)

    def test_method_forms_match_ops(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        t = nn.Tensor(x)
        assert np.allclose(t.sigmoid().data, ops.sigmoid(nn.Tensor(x)).data)
        assert np.allclose(t.tanh().data, np.tanh(x))
        assert np.allclose(t.relu().data, np.maximum(x, 0))
        assert np.allclose(t.exp().data, np.exp(x))
        assert np.allclose(t.mean().data, x.mean())
        assert np.allclose(t.clip(-0.1, 0.1).data, np.clip(x, -0.1, 0.1))
        assert np.allclose((t ** 2).sqrt().data, np.abs(x))
        assert t.reshape(4, 3).shape == (4, 3)
        assert t.reshape((4, 3)).shape == (4, 3)
        assert t.swapaxes(0, 1).shape == (4, 3)
