"""Tests of weight initializers.

The numerical-property assertions (orthonormality at 1e-10, etc.) test
the initializer math, not the precision policy, so the whole module runs
under a float64 autocast.
"""

import numpy as np
import pytest

from repro.nn import init
from repro.nn.dtype import autocast


@pytest.fixture(autouse=True)
def float64_policy():
    with autocast(np.float64):
        yield


@pytest.fixture
def local_rng():
    return np.random.default_rng(0)


class TestGlorot:
    def test_uniform_bounds(self, local_rng):
        w = init.glorot_uniform((100, 200), local_rng)
        limit = np.sqrt(6.0 / 300)
        assert np.all(np.abs(w) <= limit)

    def test_normal_std(self, local_rng):
        w = init.glorot_normal((500, 500), local_rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 5e-3

    def test_he_uniform_bounds(self, local_rng):
        w = init.he_uniform((100, 50), local_rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 100))

    def test_conv_shape_fans(self, local_rng):
        w = init.glorot_uniform((4, 8, 3), local_rng)
        assert w.shape == (4, 8, 3)


class TestOrthogonal:
    def test_orthonormal_columns(self, local_rng):
        w = init.orthogonal((8, 8), local_rng)
        assert np.allclose(w @ w.T, np.eye(8), atol=1e-10)

    def test_tall_matrix(self, local_rng):
        w = init.orthogonal((10, 4), local_rng)
        assert np.allclose(w.T @ w, np.eye(4), atol=1e-10)

    def test_wide_matrix(self, local_rng):
        w = init.orthogonal((4, 10), local_rng)
        assert np.allclose(w @ w.T, np.eye(4), atol=1e-10)

    def test_gain_scales(self, local_rng):
        w = init.orthogonal((6, 6), local_rng, gain=2.0)
        assert np.allclose(w @ w.T, 4 * np.eye(6), atol=1e-9)

    def test_rejects_one_dim(self, local_rng):
        with pytest.raises(ValueError):
            init.orthogonal((5,), local_rng)


class TestSimple:
    def test_zeros_and_ones(self):
        assert np.all(init.zeros((3, 2)) == 0.0)
        assert np.all(init.ones((3, 2)) == 1.0)

    def test_uniform_range(self, local_rng):
        w = init.uniform((1000,), local_rng, low=-0.1, high=0.1)
        assert np.all(np.abs(w) <= 0.1)

    def test_normal_std(self, local_rng):
        w = init.normal((5000,), local_rng, std=0.2)
        assert abs(w.std() - 0.2) < 0.02

    def test_reproducible_from_seed(self):
        a = init.glorot_uniform((4, 4), np.random.default_rng(42))
        b = init.glorot_uniform((4, 4), np.random.default_rng(42))
        assert np.array_equal(a, b)
