"""Integration tests: the substrate can actually learn nonlinear tasks."""

import numpy as np

from repro import nn
from repro.nn.layers import GRU, Dense, MLP
from repro.nn.losses import bce_with_logits
from repro.nn.module import Module


def test_mlp_learns_xor():
    """XOR is not linearly separable; solving it exercises the full stack."""
    x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
    y = np.array([0.0, 1.0, 1.0, 0.0])
    mlp = MLP([2, 8, 1], np.random.default_rng(0))
    optimizer = nn.Adam(mlp.parameters(), lr=0.05)
    for _ in range(300):
        optimizer.zero_grad()
        logits = mlp(nn.Tensor(x)).reshape(-1)
        loss = bce_with_logits(logits, y)
        loss.backward()
        optimizer.step()
    probs = 1 / (1 + np.exp(-mlp(nn.Tensor(x)).data.reshape(-1)))
    assert np.all((probs > 0.5) == (y > 0.5))


def test_gru_learns_first_token_memory():
    """Classify sequences by their FIRST element: requires long memory."""
    rng = np.random.default_rng(1)
    n, steps = 64, 10
    first = rng.integers(0, 2, n).astype(float)
    x = rng.normal(0, 0.1, size=(n, steps, 1))
    x[:, 0, 0] = first * 2 - 1

    class Classifier(Module):
        def __init__(self):
            super().__init__()
            self.encoder = GRU(1, 8, np.random.default_rng(2),
                               return_sequences=False)
            self.head = Dense(8, 1, np.random.default_rng(3))

        def forward(self, inputs):
            return self.head(self.encoder(inputs)).reshape(-1)

    model = Classifier()
    optimizer = nn.Adam(model.parameters(), lr=0.02)
    for _ in range(60):
        optimizer.zero_grad()
        loss = bce_with_logits(model(nn.Tensor(x)), first)
        loss.backward()
        optimizer.step()
    predictions = model(nn.Tensor(x)).data > 0
    assert (predictions == (first > 0.5)).mean() > 0.9


def test_gradient_descent_is_deterministic():
    """Same seed, same data -> bit-identical training trajectory."""

    def run():
        rng = np.random.default_rng(5)
        model = MLP([3, 4, 1], np.random.default_rng(6))
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        x = rng.normal(size=(8, 3))
        y = rng.normal(size=(8, 1))
        for _ in range(5):
            optimizer.zero_grad()
            diff = model(nn.Tensor(x)) - nn.Tensor(y)
            (diff * diff).mean().backward()
            optimizer.step()
        return model(nn.Tensor(x)).data

    assert np.array_equal(run(), run())
