"""Tests of the layer zoo: shapes, semantics, and reference comparisons."""

import numpy as np
import pytest

from repro import nn
from repro.nn import ops
from repro.nn.layers import (GRU, LSTM, AdditiveAttention, BiGRU, Conv1D,
                             Dense, Dropout, Embedding, GeneralAttention,
                             GRUCell, LayerNorm, LocationAttention, MLP,
                             LSTMCell, MultiHeadSelfAttention,
                             positional_encoding)


@pytest.fixture
def local_rng():
    return np.random.default_rng(99)


class TestDense:
    def test_output_shape(self, local_rng):
        layer = Dense(4, 7, local_rng)
        out = layer(nn.Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 7)

    def test_broadcasts_over_leading_dims(self, local_rng):
        layer = Dense(4, 7, local_rng)
        out = layer(nn.Tensor(np.zeros((2, 5, 4))))
        assert out.shape == (2, 5, 7)

    def test_activation_applied(self, local_rng):
        layer = Dense(3, 3, local_rng, activation="relu")
        out = layer(nn.Tensor(-np.ones((1, 3)) * 100))
        assert np.all(out.data >= 0)

    def test_no_bias_option(self, local_rng):
        layer = Dense(3, 2, local_rng, use_bias=False)
        assert len(layer.parameters()) == 1

    def test_unknown_activation_raises(self, local_rng):
        with pytest.raises(ValueError):
            Dense(2, 2, local_rng, activation="warp")

    def test_callable_activation(self, local_rng):
        layer = Dense(2, 2, local_rng, activation=ops.tanh)
        out = layer(nn.Tensor(np.ones((1, 2)) * 100))
        assert np.all(np.abs(out.data) <= 1.0)


class TestMLP:
    def test_stacks_layers(self, local_rng):
        mlp = MLP([4, 8, 8, 2], local_rng)
        assert mlp(nn.Tensor(np.zeros((3, 4)))).shape == (3, 2)

    def test_requires_two_sizes(self, local_rng):
        with pytest.raises(ValueError):
            MLP([4], local_rng)


class TestRecurrent:
    def test_gru_sequence_shape(self, local_rng):
        gru = GRU(5, 8, local_rng)
        out = gru(nn.Tensor(np.zeros((2, 6, 5))))
        assert out.shape == (2, 6, 8)

    def test_gru_last_state_mode(self, local_rng):
        gru = GRU(5, 8, local_rng, return_sequences=False)
        assert gru(nn.Tensor(np.zeros((2, 6, 5)))).shape == (2, 8)

    def test_gru_zero_input_zero_state_stays_bounded(self, local_rng):
        gru = GRU(3, 4, local_rng)
        out = gru(nn.Tensor(np.zeros((1, 10, 3))))
        assert np.all(np.abs(out.data) <= 1.0)

    def test_gru_cell_matches_manual_formula(self, local_rng):
        cell = GRUCell(2, 3, local_rng)
        x = local_rng.normal(size=(1, 2))
        h = local_rng.normal(size=(1, 3))
        out = cell(nn.Tensor(x), nn.Tensor(h)).data

        def sigmoid(v):
            return 1 / (1 + np.exp(-v))

        gates_x = x @ cell.w_ih.data + cell.b_ih.data
        gates_h = h @ cell.w_hh.data + cell.b_hh.data
        z = sigmoid(gates_x[:, :3] + gates_h[:, :3])
        r = sigmoid(gates_x[:, 3:6] + gates_h[:, 3:6])
        n = np.tanh(gates_x[:, 6:] + r * gates_h[:, 6:])
        expected = z * h + (1 - z) * n
        assert np.allclose(out, expected)

    def test_lstm_shapes(self, local_rng):
        lstm = LSTM(5, 8, local_rng)
        assert lstm(nn.Tensor(np.zeros((2, 6, 5)))).shape == (2, 6, 8)

    def test_lstm_forget_bias_initialized_to_one(self, local_rng):
        cell = LSTMCell(4, 6, local_rng)
        assert np.all(cell.bias.data[6:12] == 1.0)

    def test_bigru_concatenates_directions(self, local_rng):
        bigru = BiGRU(5, 8, local_rng)
        assert bigru(nn.Tensor(np.zeros((2, 6, 5)))).shape == (2, 6, 16)

    def test_bigru_backward_direction_sees_future(self, local_rng):
        bigru = BiGRU(1, 4, local_rng)
        x = np.zeros((1, 5, 1))
        x[0, -1, 0] = 1.0  # impulse at the last step
        out = bigru(nn.Tensor(x)).data
        # The backward half at t=0 must react to the impulse at t=4.
        assert np.abs(out[0, 0, 4:]).max() > 1e-6
        # The forward half at t=0 must not.
        assert np.abs(out[0, 0, :4]).max() < 1e-12


class TestAttention:
    def test_location_scores_shape(self, local_rng):
        attn = LocationAttention(8, local_rng)
        assert attn(nn.Tensor(np.zeros((2, 5, 8)))).shape == (2, 5, 1)

    def test_general_scores_shape(self, local_rng):
        attn = GeneralAttention(8, local_rng)
        out = attn(nn.Tensor(np.zeros((2, 8))), nn.Tensor(np.zeros((2, 5, 8))))
        assert out.shape == (2, 5, 1)

    def test_additive_scores_shape(self, local_rng):
        attn = AdditiveAttention(8, 6, local_rng)
        out = attn(nn.Tensor(np.zeros((2, 8))), nn.Tensor(np.zeros((2, 5, 8))))
        assert out.shape == (2, 5, 1)

    def test_multihead_output_shape(self, local_rng):
        attn = MultiHeadSelfAttention(8, 2, local_rng)
        assert attn(nn.Tensor(np.zeros((2, 5, 8)))).shape == (2, 5, 8)

    def test_multihead_rejects_indivisible(self, local_rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(7, 2, local_rng)

    def test_causal_mask_blocks_future(self, local_rng):
        attn = MultiHeadSelfAttention(4, 1, local_rng, causal=True)
        x = local_rng.normal(size=(1, 6, 4))
        _, weights = attn(nn.Tensor(x), return_weights=True)
        w = weights.data[0, 0]  # (T, T)
        assert np.all(np.triu(w, k=1) < 1e-9)
        assert np.allclose(w.sum(axis=-1), 1.0)

    def test_attention_weights_are_distributions(self, local_rng):
        attn = MultiHeadSelfAttention(4, 2, local_rng)
        x = local_rng.normal(size=(2, 5, 4))
        _, weights = attn(nn.Tensor(x), return_weights=True)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)


class TestNormAndDropout:
    def test_layernorm_standardizes(self, local_rng):
        norm = LayerNorm(16)
        x = local_rng.normal(loc=5.0, scale=3.0, size=(4, 16))
        out = norm(nn.Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layernorm_scale_shift_are_learned(self):
        norm = LayerNorm(4)
        assert len(norm.parameters()) == 2

    def test_dropout_off_in_eval(self, local_rng):
        drop = Dropout(0.9, local_rng)
        drop.eval()
        x = np.ones((100,))
        assert np.array_equal(drop(nn.Tensor(x)).data, x)

    def test_dropout_preserves_expectation(self, local_rng):
        drop = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((100000,))
        out = drop(nn.Tensor(x)).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_dropout_rate_validation(self, local_rng):
        with pytest.raises(ValueError):
            Dropout(1.0, local_rng)

    def test_dropout_zero_rate_identity(self, local_rng):
        drop = Dropout(0.0, local_rng)
        x = nn.Tensor(np.ones(5))
        assert drop(x) is x


class TestConv1D:
    def test_same_padding_shape(self, local_rng):
        conv = Conv1D(3, 5, 3, local_rng)
        assert conv(nn.Tensor(np.zeros((2, 7, 3)))).shape == (2, 7, 5)

    def test_rejects_even_kernel(self, local_rng):
        with pytest.raises(ValueError):
            Conv1D(3, 5, 4, local_rng)

    def test_matches_naive_convolution(self, local_rng):
        conv = Conv1D(2, 3, 3, local_rng)
        x = local_rng.normal(size=(1, 6, 2))
        out = conv(nn.Tensor(x)).data

        kernel = conv.kernel.data  # (3, 2, 3)
        padded = np.pad(x, ((0, 0), (1, 1), (0, 0)))
        expected = np.zeros((1, 6, 3))
        for t in range(6):
            for k in range(3):
                expected[0, t] += padded[0, t + k] @ kernel[k]
        expected += conv.bias.data
        assert np.allclose(out, expected)


class TestEmbeddings:
    def test_lookup_shape(self, local_rng):
        emb = Embedding(10, 4, local_rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_returns_table_rows(self, local_rng):
        emb = Embedding(5, 3, local_rng)
        out = emb(np.array([2]))
        assert np.allclose(out.data[0], emb.table.data[2])

    def test_positional_encoding_shape_and_range(self):
        pe = positional_encoding(48, 16).data
        assert pe.shape == (48, 16)
        assert np.all(np.abs(pe) <= 1.0)

    def test_positional_encoding_rows_distinct(self):
        pe = positional_encoding(20, 8).data
        dists = np.linalg.norm(pe[:, None] - pe[None, :], axis=-1)
        np.fill_diagonal(dists, np.inf)
        assert dists.min() > 1e-3
