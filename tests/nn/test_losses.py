"""Tests of loss functions, including numerical-stability properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.losses import (bce_with_logits, binary_cross_entropy,
                             cross_entropy, mean_squared_error)
from tests.conftest import assert_gradcheck

RNG = np.random.default_rng(3)


class TestBinaryCrossEntropy:
    def test_known_value(self):
        loss = binary_cross_entropy(nn.Tensor([0.5, 0.5]),
                                    np.array([1.0, 0.0]))
        assert np.isclose(loss.item(), np.log(2.0))

    def test_perfect_prediction_near_zero(self):
        loss = binary_cross_entropy(nn.Tensor([0.9999999, 0.0000001]),
                                    np.array([1.0, 0.0]))
        assert loss.item() < 1e-4

    def test_clipping_prevents_infinity(self):
        loss = binary_cross_entropy(nn.Tensor([0.0, 1.0]),
                                    np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())

    def test_reductions(self):
        probs = nn.Tensor([0.5, 0.5])
        targets = np.array([1.0, 0.0])
        total = binary_cross_entropy(probs, targets, reduction="sum").item()
        mean = binary_cross_entropy(probs, targets, reduction="mean").item()
        per = binary_cross_entropy(probs, targets, reduction="none")
        assert np.isclose(total, 2 * mean)
        assert per.shape == (2,)

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError):
            binary_cross_entropy(nn.Tensor([0.5]), np.array([1.0]),
                                 reduction="bogus")


class TestBCEWithLogits:
    def test_matches_probability_form(self):
        logits = RNG.normal(size=10) * 2
        targets = (RNG.random(10) > 0.5).astype(float)
        via_logits = bce_with_logits(nn.Tensor(logits), targets).item()
        probs = 1 / (1 + np.exp(-logits))
        via_probs = binary_cross_entropy(nn.Tensor(probs), targets).item()
        assert np.isclose(via_logits, via_probs, atol=1e-6)

    def test_stable_for_extreme_logits(self):
        loss = bce_with_logits(nn.Tensor([1000.0, -1000.0]),
                               np.array([1.0, 0.0]))
        assert np.isclose(loss.item(), 0.0)

    def test_gradient_is_sigmoid_minus_target(self):
        logits = nn.Tensor([0.0, 2.0], requires_grad=True)
        bce_with_logits(logits, np.array([1.0, 0.0]),
                        reduction="sum").backward()
        expected = 1 / (1 + np.exp(-logits.data)) - np.array([1.0, 0.0])
        assert np.allclose(logits.grad, expected)

    def test_gradcheck(self):
        targets = (RNG.random(6) > 0.5).astype(float)
        assert_gradcheck(
            lambda z: bce_with_logits(z, targets), RNG.normal(size=6))

    def test_pos_weight_upweights_positives(self):
        logits = np.zeros(2)
        targets = np.array([1.0, 0.0])
        plain = bce_with_logits(nn.Tensor(logits), targets,
                                reduction="none").data
        weighted = bce_with_logits(nn.Tensor(logits), targets,
                                   reduction="none", pos_weight=3.0).data
        assert np.isclose(weighted[0], 3 * plain[0])
        assert np.isclose(weighted[1], plain[1])

    def test_pos_weight_gradcheck(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0])
        assert_gradcheck(
            lambda z: bce_with_logits(z, targets, pos_weight=2.5),
            RNG.normal(size=4))


class TestCrossEntropy:
    def test_uniform_logits(self):
        logits = nn.Tensor(np.zeros((3, 4)))
        loss = cross_entropy(logits, np.array([0, 1, 2]))
        assert np.isclose(loss.item(), np.log(4.0))

    def test_correct_class_dominates(self):
        logits = np.full((2, 3), -10.0)
        logits[0, 1] = 10.0
        logits[1, 2] = 10.0
        loss = cross_entropy(nn.Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_gradcheck(self):
        targets = np.array([0, 2, 1])
        assert_gradcheck(lambda z: cross_entropy(z, targets),
                         RNG.normal(size=(3, 4)))


class TestMSE:
    def test_zero_at_match(self):
        x = nn.Tensor([1.0, 2.0])
        assert mean_squared_error(x, np.array([1.0, 2.0])).item() == 0.0

    def test_known_value(self):
        loss = mean_squared_error(nn.Tensor([0.0, 0.0]),
                                  np.array([1.0, 3.0]))
        assert np.isclose(loss.item(), 5.0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-20, 20), min_size=1, max_size=16),
       st.integers(0, 2 ** 16 - 1))
def test_bce_with_logits_always_nonnegative(logit_values, label_bits):
    """Property: BCE is nonnegative and finite for any logits."""
    logits = np.array(logit_values)
    labels = np.array([(label_bits >> i) & 1 for i in range(len(logits))],
                      dtype=float)
    loss = bce_with_logits(nn.Tensor(logits), labels).item()
    assert loss >= -1e-12
    assert np.isfinite(loss)
