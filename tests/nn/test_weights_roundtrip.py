"""Registry-driven save/load round trips for every evaluated model.

``save_weights`` / ``load_weights`` must reproduce bit-identical
``forward_batch`` outputs for each baseline in the registry and every
ELDA-Net variant: a freshly built model (different init RNG) loaded
from the archive must agree with the original to the last bit.
"""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.baselines.registry import ALL_MODEL_NAMES
from repro.data import NUM_FEATURES, SyntheticEMRGenerator, build_dataset
from repro.nn.serialization import load_weights, save_weights


@pytest.fixture(scope="module")
def probe_batch():
    admissions = SyntheticEMRGenerator().sample_many(
        6, np.random.default_rng(99))
    dataset, _ = build_dataset(admissions)
    return dataset


@pytest.mark.parametrize("name", ALL_MODEL_NAMES)
def test_roundtrip_forward_is_bit_identical(name, probe_batch, tmp_path):
    original = build_model(name, NUM_FEATURES, np.random.default_rng(0))
    original.eval()
    reference = original.forward_batch(probe_batch).data

    path = tmp_path / "weights.npz"
    save_weights(original, path)

    # A different init seed guarantees the load actually overwrote
    # every parameter rather than riding on identical initialization.
    restored = build_model(name, NUM_FEATURES, np.random.default_rng(1))
    load_weights(restored, path)
    restored.eval()
    out = restored.forward_batch(probe_batch).data
    np.testing.assert_array_equal(out, reference)


def test_load_rejects_mismatched_architecture(probe_batch, tmp_path):
    small = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                        hidden_size=4)
    big = build_model("GRU", NUM_FEATURES, np.random.default_rng(0),
                      hidden_size=8)
    path = tmp_path / "weights.npz"
    save_weights(small, path)
    with pytest.raises(ValueError, match="shape mismatch"):
        load_weights(big, path)
